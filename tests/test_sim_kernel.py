"""Unit tests for the discrete-event kernel (events, clock, scheduling)."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_and_run_orders_by_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(9.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(3.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_priority_breaks_time_ties():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "low", priority=5)
    sim.schedule(1.0, fired.append, "high", priority=-5)
    sim.run()
    assert fired == ["high", "low"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.schedule(50.0, lambda: None)
    sim.run(until=20.0)
    assert sim.now == 20.0
    # Second run resumes and executes the remaining event.
    sim.run()
    assert sim.now == 50.0


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.run(until=5.0)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(7.0, fired.append, "x")
    sim.run()
    assert fired == ["x"] and sim.now == 7.0
    with pytest.raises(SchedulingError):
        sim.schedule_at(3.0, fired.append, "y")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(4.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.now == 2.0


def test_peek_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_returns_none():
    assert Simulator().peek() is None


def test_event_count_increments():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.event_count == 5


def test_waitable_trigger_twice_raises():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(1)
    with pytest.raises(SimulationError):
        ev.trigger(2)


def test_waitable_late_registration_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.trigger("v")
    got = []
    ev.wait(lambda w: got.append(w.value))
    sim.run()
    assert got == ["v"]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []
    combo = sim.any_of([sim.timeout(5, "slow"), sim.timeout(2, "fast")])
    combo.wait(lambda w: got.append(w.value))
    sim.run()
    assert got == [["fast"]]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    got = []
    combo = sim.all_of([sim.timeout(5, "slow"), sim.timeout(2, "fast")])
    combo.wait(lambda w: got.append((sim.now, w.value)))
    sim.run()
    assert got == [(5.0, ["fast", "slow"])]


def test_negative_timeout_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-3)
