"""Unit tests for the discrete-event kernel (events, clock, scheduling)."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_and_run_orders_by_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(9.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(3.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_priority_breaks_time_ties():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "low", priority=5)
    sim.schedule(1.0, fired.append, "high", priority=-5)
    sim.run()
    assert fired == ["high", "low"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.schedule(50.0, lambda: None)
    sim.run(until=20.0)
    assert sim.now == 20.0
    # Second run resumes and executes the remaining event.
    sim.run()
    assert sim.now == 50.0


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.run(until=5.0)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(7.0, fired.append, "x")
    sim.run()
    assert fired == ["x"] and sim.now == 7.0
    with pytest.raises(SchedulingError):
        sim.schedule_at(3.0, fired.append, "y")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(4.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.now == 2.0


def test_peek_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_returns_none():
    assert Simulator().peek() is None


def test_event_count_increments():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.event_count == 5


def test_waitable_trigger_twice_raises():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(1)
    with pytest.raises(SimulationError):
        ev.trigger(2)


def test_waitable_late_registration_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.trigger("v")
    got = []
    ev.wait(lambda w: got.append(w.value))
    sim.run()
    assert got == ["v"]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []
    combo = sim.any_of([sim.timeout(5, "slow"), sim.timeout(2, "fast")])
    combo.wait(lambda w: got.append(w.value))
    sim.run()
    assert got == [["fast"]]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    got = []
    combo = sim.all_of([sim.timeout(5, "slow"), sim.timeout(2, "fast")])
    combo.wait(lambda w: got.append((sim.now, w.value)))
    sim.run()
    assert got == [(5.0, ["fast", "slow"])]


def test_negative_timeout_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-3)


# ----------------------------------------------------------------------
# Hot-path machinery: schedule_fast, lazy compaction, on_event hook
# ----------------------------------------------------------------------
def test_schedule_fast_interleaves_fifo_with_schedule():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule_fast(1.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "c")
    sim.schedule_fast(1.0, fired.append, "d")
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_schedule_fast_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule_fast(-0.5, lambda: None)


def test_mass_cancellation_compacts_heap():
    from repro.sim.kernel import COMPACT_MIN_CANCELLED

    sim = Simulator()
    keep = []
    handles = [
        sim.schedule(10.0, keep.append, i)
        for i in range(2 * COMPACT_MIN_CANCELLED)
    ]
    survivors = set(range(0, len(handles), 4))
    for i, h in enumerate(handles):
        if i not in survivors:
            h.cancel()
    # At least one compaction fired: the heap physically shrank (a purely
    # lazy kernel would still hold all 128 entries), and the pending
    # cancelled count was reset below the threshold.
    assert len(sim._heap) < len(handles)
    assert sim._cancelled < COMPACT_MIN_CANCELLED
    sim.run()
    assert keep == sorted(survivors)
    assert sim.event_count == len(survivors)


def test_cancellation_below_threshold_stays_lazy():
    sim = Simulator()
    handles = [sim.schedule(5.0, lambda: None) for _ in range(10)]
    for h in handles[:5]:
        h.cancel()
    # Too few cancels to compact: entries stay, flagged, until popped.
    assert len(sim._heap) == 10
    sim.run()
    assert sim.event_count == 5


def test_double_cancel_counts_once():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    h.cancel()
    h.cancel()
    assert sim._cancelled == 1


def test_compaction_during_run_keeps_dispatching():
    from repro.sim.kernel import COMPACT_MIN_CANCELLED

    sim = Simulator()
    fired = []
    victims = [
        sim.schedule(50.0, fired.append, "victim")
        for _ in range(2 * COMPACT_MIN_CANCELLED)
    ]

    def massacre():
        for v in victims:
            v.cancel()

    sim.schedule(1.0, massacre)
    sim.schedule(2.0, fired.append, "after")
    sim.run()
    # The in-run compaction must not strand the later event.
    assert fired == ["after"]
    assert sim.now == 50.0 or sim.now == 2.0  # clock stops at last executed


def test_on_event_hook_sees_every_event():
    sim = Simulator()
    seen = []
    sim.on_event = lambda time, fn, args: seen.append((time, args))
    sim.schedule(1.0, lambda: None)
    sim.schedule_fast(2.0, lambda x: None, "payload")
    sim.run()
    assert [t for t, _ in seen] == [1.0, 2.0]
    assert seen[1][1] == ("payload",)
    assert sim.event_count == 2


def test_instrumented_and_fast_paths_agree():
    def build(hooked):
        sim = Simulator()
        fired = []
        if hooked:
            sim.on_event = lambda *a: None
        for tag in range(20):
            sim.schedule(float(tag % 5), fired.append, tag)
        sim.schedule_fast(2.5, fired.append, "mid")
        sim.run()
        return fired, sim.now, sim.event_count

    assert build(True) == build(False)
