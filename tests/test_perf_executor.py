"""Parallel sweep execution must be bit-identical to serial execution.

The acceptance contract for ``--jobs``: the same :class:`SweepSpec` run at
``jobs=1`` and ``jobs=4`` produces identical :class:`RunResult` sequences
and identical determinism fingerprints — worker scheduling must be
unobservable in the results.
"""

import pytest

from repro.analysis.determinism import sweep_fingerprint
from repro.experiments.sweep import SweepSpec, run_sweep, run_sweep_matrix
from repro.metrics.collector import MeasurementPlan
from repro.perf.executor import RunTask, execute_run, execute_tasks

TINY_PLAN = MeasurementPlan(warmup=200, measure=600, drain_limit=1500)


def tiny_spec(**overrides):
    defaults = dict(
        pattern="uniform",
        loads=(0.2, 0.4),
        policies=("NP-NB", "P-B"),
        boards=2,
        nodes_per_board=4,
        seed=1,
        plan=TINY_PLAN,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def test_jobs4_bit_identical_to_serial():
    spec = tiny_spec()
    serial = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=4)

    assert list(serial) == list(parallel)  # same policies, same order
    for policy in serial:
        for a, b in zip(serial[policy], parallel[policy]):
            assert a.to_dict() == b.to_dict()
    assert sweep_fingerprint(serial) == sweep_fingerprint(parallel)


def test_executor_preserves_task_order_and_reports_completions():
    spec = tiny_spec()
    from repro.core.config import ERapidConfig
    from repro.core.policies import POLICIES
    from repro.network.topology import ERapidTopology
    from repro.traffic.workload import WorkloadSpec

    config = ERapidConfig(
        topology=ERapidTopology(boards=2, nodes_per_board=4)
    ).with_policy(POLICIES["P-B"])
    tasks = [
        RunTask(config, WorkloadSpec("uniform", load, seed=1), TINY_PLAN)
        for load in (0.2, 0.3, 0.4)
    ]
    seen = []
    results = execute_tasks(tasks, jobs=2, on_result=lambda i, r: seen.append(i))
    assert sorted(seen) == [0, 1, 2]
    # Task order in the returned list regardless of completion order.
    inline = [execute_run(t) for t in tasks]
    assert [r.to_dict() for r in results] == [r.to_dict() for r in inline]


def test_executor_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        execute_tasks([], jobs=0)


def test_matrix_runs_multiple_panels_in_one_batch():
    specs = {
        "uniform": tiny_spec(),
        "complement": tiny_spec(pattern="complement"),
    }
    matrix = run_sweep_matrix(specs, jobs=4)
    assert set(matrix) == {"uniform", "complement"}
    for name, spec in specs.items():
        assert set(matrix[name]) == set(spec.policies)
        for runs in matrix[name].values():
            assert len(runs) == len(spec.loads)
    # Each panel individually matches its standalone serial sweep.
    for name, spec in specs.items():
        assert sweep_fingerprint(matrix[name]) == sweep_fingerprint(
            run_sweep(spec)
        )


def test_progress_streams_one_line_per_run():
    spec = tiny_spec()
    lines = []
    run_sweep(
        spec,
        progress=lambda policy, load, r: lines.append((policy, load)),
        jobs=4,
    )
    assert sorted(lines) == sorted(
        (p, l) for p in spec.policies for l in spec.loads
    )
