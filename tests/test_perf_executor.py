"""Parallel sweep execution must be bit-identical to serial execution.

The acceptance contract for ``--jobs``: the same :class:`SweepSpec` run at
``jobs=1`` and ``jobs=4`` produces identical :class:`RunResult` sequences
and identical determinism fingerprints — worker scheduling must be
unobservable in the results.
"""

import pytest

from repro.analysis.determinism import sweep_fingerprint
from repro.experiments.sweep import SweepSpec, run_sweep, run_sweep_matrix
from repro.metrics.collector import MeasurementPlan
from repro.perf.executor import RunTask, execute_run, execute_tasks

TINY_PLAN = MeasurementPlan(warmup=200, measure=600, drain_limit=1500)


def tiny_spec(**overrides):
    defaults = dict(
        pattern="uniform",
        loads=(0.2, 0.4),
        policies=("NP-NB", "P-B"),
        boards=2,
        nodes_per_board=4,
        seed=1,
        plan=TINY_PLAN,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def test_jobs4_bit_identical_to_serial():
    spec = tiny_spec()
    serial = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=4)

    assert list(serial) == list(parallel)  # same policies, same order
    for policy in serial:
        for a, b in zip(serial[policy], parallel[policy]):
            assert a.to_dict() == b.to_dict()
    assert sweep_fingerprint(serial) == sweep_fingerprint(parallel)


def test_executor_preserves_task_order_and_reports_completions():
    spec = tiny_spec()
    from repro.core.config import ERapidConfig
    from repro.core.policies import POLICIES
    from repro.network.topology import ERapidTopology
    from repro.traffic.workload import WorkloadSpec

    config = ERapidConfig(
        topology=ERapidTopology(boards=2, nodes_per_board=4)
    ).with_policy(POLICIES["P-B"])
    tasks = [
        RunTask(config, WorkloadSpec("uniform", load, seed=1), TINY_PLAN)
        for load in (0.2, 0.3, 0.4)
    ]
    seen = []
    results = execute_tasks(tasks, jobs=2, on_result=lambda i, r: seen.append(i))
    assert sorted(seen) == [0, 1, 2]
    # Task order in the returned list regardless of completion order.
    inline = [execute_run(t) for t in tasks]
    assert [r.to_dict() for r in results] == [r.to_dict() for r in inline]


def test_executor_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        execute_tasks([], jobs=0)


def test_matrix_runs_multiple_panels_in_one_batch():
    specs = {
        "uniform": tiny_spec(),
        "complement": tiny_spec(pattern="complement"),
    }
    matrix = run_sweep_matrix(specs, jobs=4)
    assert set(matrix) == {"uniform", "complement"}
    for name, spec in specs.items():
        assert set(matrix[name]) == set(spec.policies)
        for runs in matrix[name].values():
            assert len(runs) == len(spec.loads)
    # Each panel individually matches its standalone serial sweep.
    for name, spec in specs.items():
        assert sweep_fingerprint(matrix[name]) == sweep_fingerprint(
            run_sweep(spec)
        )


def test_progress_streams_one_line_per_run():
    spec = tiny_spec()
    lines = []
    run_sweep(
        spec,
        progress=lambda policy, load, r: lines.append((policy, load)),
        jobs=4,
    )
    assert sorted(lines) == sorted(
        (p, l) for p in spec.policies for l in spec.loads
    )


def test_sweepspec_tasks_matches_executed_task_list(monkeypatch):
    """SweepSpec.tasks() must stay in lock-step with run_sweep_matrix's
    cell construction — the CLI's verbose shard-plan preview and the
    shard planner reason about exactly this list."""
    import repro.perf.executor as executor_mod

    spec = tiny_spec()
    captured = {}
    real = executor_mod.execute_tasks

    def recording(tasks, jobs=1, on_result=None):
        captured["tasks"] = list(tasks)
        return real(tasks, jobs=jobs, on_result=on_result)

    monkeypatch.setattr(executor_mod, "execute_tasks", recording)
    run_sweep(spec, jobs=1)
    # Compare by canonical content (PowerLevelTable compares by identity,
    # so freshly-built configs are never `==` even when identical).
    from repro.perf.cache import canonical_payload

    def canon(tasks):
        return [canonical_payload(t.config, t.workload, t.plan) for t in tasks]

    assert canon(captured["tasks"]) == canon(spec.tasks())


# ----------------------------------------------------------------------
# Sharded batch execution: hooks and error paths
# ----------------------------------------------------------------------
def mixed_tasks():
    """Covered (uniform/complement) plus uncovered (hotspot) points."""
    from repro.core.config import ERapidConfig
    from repro.core.policies import POLICIES
    from repro.network.topology import ERapidTopology
    from repro.traffic.workload import WorkloadSpec

    config = ERapidConfig(
        topology=ERapidTopology(boards=2, nodes_per_board=4)
    ).with_policy(POLICIES["P-B"])
    tasks = []
    for pattern in ("uniform", "complement", "hotspot"):
        for load in (0.2, 0.3, 0.4, 0.5):
            tasks.append(
                RunTask(config, WorkloadSpec(pattern, load, seed=1), TINY_PLAN)
            )
    return tasks


def test_on_result_fires_exactly_once_in_task_order_within_shard():
    from repro.perf.executor import run_sweep_batched
    from repro.perf.shards import plan_shards

    tasks = mixed_tasks()
    plan = plan_shards(tasks, jobs=1, slab_shard=3)
    seen = []
    results = run_sweep_batched(
        tasks, jobs=1, slab_shard=3, on_result=lambda i, r: seen.append(i)
    )
    assert sorted(seen) == list(range(len(tasks)))  # exactly once each
    # Within every shard, delivery follows task order.
    position = {index: pos for pos, index in enumerate(seen)}
    for shard in plan.shards:
        shard_positions = [position[i] for i in shard.indices]
        assert shard_positions == sorted(shard_positions), shard
    assert all(r is not None for r in results)


def test_on_shard_reports_layout_and_transport():
    from repro.perf.executor import run_sweep_batched
    from repro.perf.shards import plan_shards

    tasks = mixed_tasks()
    plan = plan_shards(tasks, jobs=1, slab_shard=3)
    reports = []
    run_sweep_batched(tasks, jobs=1, slab_shard=3, on_shard=reports.append)

    batch_reports = [r for r in reports if r.kind == "batch"]
    scalar_reports = [r for r in reports if r.kind == "scalar"]
    assert len(batch_reports) == len(plan.batch_shards)
    assert len(scalar_reports) == 1
    assert scalar_reports[0].runs == len(plan.scalar_indices)
    for r in batch_reports:
        assert r.seconds > 0
        assert r.payload_bytes > 0  # struct-of-arrays transport volume
    assert sum(r.runs for r in reports) == len(tasks)


def _check_fallback_rescues_shard(jobs):
    """A batch shard that raises must be transparently re-run scalar."""
    import pytest

    from repro.core.batch import BatchEngine
    from repro.perf.executor import run_sweep_batched
    from repro.perf.shards import plan_shards

    tasks = mixed_tasks()
    plan = plan_shards(tasks, jobs=jobs, slab_shard=3)
    # The failure is keyed on shard *content* (the shard holding the
    # uniform load=0.2 point) so it triggers deterministically in the
    # parent and in forked pool workers alike.
    (doomed,) = [
        s
        for s in plan.batch_shards
        if any(
            tasks[i].workload.pattern == "uniform"
            and tasks[i].workload.load == 0.2
            for i in s.indices
        )
    ]
    baseline = run_sweep_batched(tasks, jobs=1, slab_shard=3)
    expected = [
        execute_run(t) if i in doomed.indices else baseline[i]
        for i, t in enumerate(tasks)
    ]

    if jobs > 1:
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("monkeypatch only reaches pool workers under fork")

    original = BatchEngine.run_payload

    def boom(self):
        if any(
            wl.pattern == "uniform" and wl.load == 0.2
            for _, wl, _ in self.runs
        ):
            raise RuntimeError("injected shard failure")
        return original(self)

    reports = []
    seen = []
    try:
        BatchEngine.run_payload = boom
        results = run_sweep_batched(
            tasks,
            jobs=jobs,
            slab_shard=3,
            on_result=lambda i, r: seen.append(i),
            on_shard=reports.append,
        )
    finally:
        BatchEngine.run_payload = original

    # The doomed shard's runs carry scalar-engine results; every other
    # run is bit-identical to the unfailed batch sweep.
    assert [r.to_dict() for r in results] == [r.to_dict() for r in expected]
    assert sorted(seen) == list(range(len(tasks)))  # still exactly once
    fallbacks = [r for r in reports if r.kind == "fallback"]
    assert len(fallbacks) == 1
    assert fallbacks[0].shard_id == doomed.shard_id
    assert fallbacks[0].runs == doomed.runs
    assert "injected shard failure" in fallbacks[0].error


def test_failed_shard_falls_back_to_scalar_inline():
    _check_fallback_rescues_shard(jobs=1)


def test_failed_shard_falls_back_to_scalar_in_pool():
    _check_fallback_rescues_shard(jobs=2)
