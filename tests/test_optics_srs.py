"""Unit + property tests for transmitters, couplers, receivers and the SRS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PowerModelError, WavelengthError
from repro.network.topology import ERapidTopology
from repro.optics import (
    OpticalLinkTiming,
    OpticalReceiver,
    PassiveCoupler,
    SuperHighway,
    Transmitter,
    TransmitterArray,
    validate_coupler_plane,
)


def make_srs(boards=4, nodes=4):
    return SuperHighway(ERapidTopology(boards=boards, nodes_per_board=nodes))


# ----------------------------------------------------------------------
# Transmitter
# ----------------------------------------------------------------------

def test_transmitter_port_switching():
    tx = Transmitter(board=0, wavelength=2, n_ports=4)
    assert not tx.any_on
    assert tx.set_port(1, True) is True
    assert tx.set_port(1, True) is False  # no change
    assert tx.is_on(1)
    assert tx.active_ports() == {1}
    assert tx.switch_count == 1
    tx.set_port(3, True)
    assert tx.active_ports() == {1, 3}
    tx.set_port(1, False)
    assert tx.active_ports() == {3}


def test_transmitter_simultaneous_multi_port():
    """§2.2: one transmitter can drive several destinations at once."""
    tx = Transmitter(0, 1, 4)
    for p in range(4):
        tx.set_port(p, True)
    assert tx.active_ports() == {0, 1, 2, 3}


def test_transmitter_port_range():
    tx = Transmitter(0, 0, 4)
    with pytest.raises(WavelengthError):
        tx.set_port(4, True)
    with pytest.raises(WavelengthError):
        Transmitter(0, 0, 1)


def test_transmitter_array_channels():
    arr = TransmitterArray(board=2, wavelengths=4, n_ports=4)
    arr[1].set_port(3, True)
    arr[2].set_port(0, True)
    arr[2].set_port(3, True)
    assert arr.active_channels() == {1: {3}, 2: {0, 3}}
    assert arr.lasers_on() == 3
    assert len(arr) == 4


# ----------------------------------------------------------------------
# Coupler
# ----------------------------------------------------------------------

def test_coupler_detects_collision():
    a0 = TransmitterArray(0, 4, 4)
    a1 = TransmitterArray(1, 4, 4)
    a0[2].set_port(3, True)
    a1[2].set_port(3, True)  # same wavelength toward same coupler
    coupler = PassiveCoupler(3, 4)
    with pytest.raises(WavelengthError):
        coupler.validate([a0, a1])


def test_coupler_merges_distinct_wavelengths():
    """Figure 2(b): coupler 1 merges the same-numbered ports of all
    transmitters — distinct wavelengths coexist."""
    arrays = [TransmitterArray(b, 4, 4) for b in range(4)]
    for b in range(4):
        arrays[b][b].set_port(1, True)  # board b lights its λb toward board 1
    coupler = PassiveCoupler(1, 4)
    coupler.validate(arrays)
    incident = coupler.incident_lasers(arrays)
    assert incident == {0: [0], 1: [1], 2: [2], 3: [3]}


def test_validate_coupler_plane_enumerates_channels():
    arrays = [TransmitterArray(b, 4, 4) for b in range(4)]
    arrays[0][3].set_port(1, True)
    arrays[2][1].set_port(3, True)
    channels = validate_coupler_plane(arrays, 4, 4)
    assert set(channels) == {(0, 3, 1), (2, 1, 3)}


# ----------------------------------------------------------------------
# Receiver
# ----------------------------------------------------------------------

def test_receiver_reclock_penalty():
    rx = OpticalReceiver(board=1, wavelength=2, bit_rate_gbps=5.0)
    assert rx.usable(0.0)
    rx.reclock(2.5, now=100.0, relock_cycles=65)
    assert rx.bit_rate_gbps == 2.5
    assert not rx.usable(150.0)
    assert rx.usable(165.0)
    assert rx.relock_count == 1


def test_receiver_power_gating():
    rx = OpticalReceiver(0, 0)
    assert rx.set_powered(False) is True
    assert rx.set_powered(False) is False
    assert not rx.usable(0.0)
    with pytest.raises(PowerModelError):
        rx.reclock(5.0, 0.0, 65)
    rx.set_powered(True)
    assert rx.power_toggles == 2


def test_receiver_bad_bit_rate():
    rx = OpticalReceiver(0, 0)
    with pytest.raises(PowerModelError):
        rx.reclock(0.0, 0.0, 65)


# ----------------------------------------------------------------------
# Optical link timing — Table 1 cross-checks
# ----------------------------------------------------------------------

def test_serialization_matches_table1_rates():
    t = OpticalLinkTiming()
    # 64B packet = 512 bits; at 5 Gbps -> 102.4ns -> 40.96 cycles @400MHz
    assert t.packet_service_cycles(64, 5.0) == pytest.approx(40.96)
    assert t.packet_service_cycles(64, 2.5) == pytest.approx(81.92)
    assert t.packet_service_cycles(64, 3.3) == pytest.approx(62.06, abs=0.01)


def test_timing_validation():
    t = OpticalLinkTiming()
    with pytest.raises(Exception):
        t.serialization_cycles(0, 5.0)
    with pytest.raises(Exception):
        t.serialization_cycles(8, 0.0)
    with pytest.raises(Exception):
        OpticalLinkTiming(clock_ghz=0.0)
    assert t.effective_gbps(3, 5.0) == 15.0


# ----------------------------------------------------------------------
# SuperHighway
# ----------------------------------------------------------------------

def test_srs_static_bringup_matches_rwa():
    srs = make_srs(4)
    for s in range(4):
        for d in range(4):
            if s == d:
                continue
            w = srs.rwa.wavelength_for(s, d)
            assert srs.owner_of(d, w) == s
            chans = srs.channels_from(s, d)
            assert len(chans) == 1 and chans[0].wavelength == w
    # One channel per ordered pair.
    assert len(srs.all_channels()) == 4 * 3
    assert srs.lasers_on() == 4 * 3


def test_srs_grant_transfers_ownership_and_lasers():
    """The paper's §2.2 example: board 1 releases λ1 (its channel to board
    2... here board 0 gains a second channel to the hot destination)."""
    srs = make_srs(4)
    dst = 2
    w_static_b0 = srs.rwa.wavelength_for(0, dst)      # board 0's own channel
    w_donated = srs.rwa.wavelength_for(1, dst)        # board 1's channel to 2
    srs.grant(dst, w_donated, 0)
    assert srs.owner_of(dst, w_donated) == 0
    # Board 0 now owns two channels to dst; board 1 owns none.
    assert {c.wavelength for c in srs.channels_from(0, dst)} == {
        w_static_b0,
        w_donated,
    }
    assert srs.channels_from(1, dst) == []
    # Lasers follow: board 0's transmitter for w_donated lights port dst.
    assert srs.tx_arrays[0][w_donated].is_on(dst)
    assert not srs.tx_arrays[1][w_donated].is_on(dst)
    srs.validate()


def test_srs_grant_none_darkens_channel():
    srs = make_srs(4)
    w = srs.rwa.wavelength_for(3, 0)
    srs.grant(0, w, None)
    assert srs.owner_of(0, w) is None
    assert srs.channels_from(3, 0) == []
    assert srs.lasers_on() == 4 * 3 - 1


def test_srs_grant_self_loop_rejected():
    srs = make_srs(4)
    with pytest.raises(WavelengthError):
        srs.grant(2, 1, 2)


def test_srs_grant_idempotent():
    srs = make_srs(4)
    w = srs.rwa.wavelength_for(1, 2)
    before = srs.grants
    srs.grant(2, w, 1)  # already the owner
    assert srs.grants == before


def test_srs_reset_restores_static():
    srs = make_srs(4)
    srs.grant(2, srs.rwa.wavelength_for(1, 2), 0)
    srs.grant(0, srs.rwa.wavelength_for(3, 0), None)
    srs.reset_to_static()
    assert len(srs.all_channels()) == 12
    for s in range(4):
        for d in range(4):
            if s != d:
                assert srs.owner_of(d, srs.rwa.wavelength_for(s, d)) == s


def test_srs_channels_into():
    srs = make_srs(4)
    incoming = srs.channels_into(2)
    assert len(incoming) == 3
    assert all(ch.dst == 2 for ch in incoming)
    assert {ch.src for ch in incoming} == {0, 1, 3}


@settings(max_examples=25)
@given(st.integers(0, 10_000), st.data())
def test_srs_random_grant_sequences_keep_invariants(seed, data):
    """Property: any sequence of legal grants keeps exactly one owner per
    lit (λ, d) channel and a collision-free coupler plane."""
    import numpy as np

    srs = make_srs(4)
    rng = np.random.default_rng(seed)
    for _ in range(data.draw(st.integers(1, 12))):
        d = int(rng.integers(0, 4))
        w = int(rng.integers(1, 4))
        choice = int(rng.integers(0, 5))
        new_owner = None if choice == 4 else choice
        if new_owner == d:
            continue
        srs.grant(d, w, new_owner)
        live = srs.validate()
        keys = [(c.wavelength, c.dst) for c in live]
        assert len(keys) == len(set(keys))


def _index_view(srs):
    """Every (src, dst, λ) the owner index claims src owns."""
    return {
        (s, d, w)
        for s in range(srs.boards)
        for d in range(srs.boards)
        if s != d
        for w in srs.owned_wavelengths(s, d)
    }


def test_owner_index_tracks_grants_and_failures():
    """The (owner, dest) -> wavelengths index the engine's hot path reads
    must stay consistent with ``owner_of`` through grant, failure, repair
    and static reset."""
    srs = make_srs(4)

    def owner_pairs():
        return {
            (srs.owner_of(d, w), d, w)
            for d in range(srs.boards)
            for w in range(srs.wavelengths)
            if srs.owner_of(d, w) is not None
        }

    assert _index_view(srs) == owner_pairs()

    # Re-grant: board 1's channel to 2 moves to board 3.
    w = srs.rwa.wavelength_for(1, 2)
    srs.grant(2, w, 3)
    assert w not in srs.owned_wavelengths(1, 2)
    assert w in srs.owned_wavelengths(3, 2)
    assert _index_view(srs) == owner_pairs()

    # Hard failure darkens the channel and drops it from the index.
    assert srs.fail_channel(2, w) == 3
    assert w not in srs.owned_wavelengths(3, 2)
    assert _index_view(srs) == owner_pairs()

    # Repair + re-grant brings it back under a new owner.
    srs.repair_channel(2, w)
    srs.grant(2, w, 0)
    assert w in srs.owned_wavelengths(0, 2)
    assert _index_view(srs) == owner_pairs()

    # Reset rebuilds the index from the static RWA.
    srs.reset_to_static()
    assert _index_view(srs) == owner_pairs()
    srs.validate()


def test_owned_wavelengths_empty_pair_is_stable():
    """Pairs with no channels return the shared empty list and the engine
    must never be able to mutate ownership through it."""
    srs = make_srs(4)
    w = srs.rwa.wavelength_for(1, 2)
    srs.grant(2, w, 3)
    assert srs.owned_wavelengths(1, 2) == []
    # channels_from mirrors the index.
    assert srs.channels_from(1, 2) == []
    assert [c.wavelength for c in srs.channels_from(3, 2)] == sorted(
        srs.owned_wavelengths(3, 2)
    )


def test_srs_64_node_configuration():
    srs = make_srs(boards=8, nodes=8)
    assert len(srs.all_channels()) == 8 * 7
    assert srs.lasers_on() == 56
    srs.validate()
