"""Analytic queueing-theory validation.

Two layers:

1. **Kernel**: a pure M/D/1 queue built from :class:`Simulator` +
   :class:`MonitoredStore` must match the Pollaczek–Khinchine mean wait
   ``W_q = rho * S / (2 * (1 - rho))`` closely — the discrete-event
   machinery itself is quantitatively correct.

2. **Engine**: the transmitter queue of a single hot board pair behaves
   like M/D/1 with *shaped* arrivals — the 32-cycle send-port
   serialization regularizes each node's stream, so the measured wait is
   strictly positive and convex in rho but bounded *above* by the PK
   value (smoother-than-Poisson input waits less).  Both bounds are
   asserted.
"""

import numpy as np
import pytest

from repro.core import ERapidConfig, FastEngine
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.sim import MonitoredStore, Simulator
from repro.traffic import WorkloadSpec

SERVICE = 40.96  # 512 bits at 5 Gbps, in 400 MHz cycles


def pk_wait(rho: float) -> float:
    return rho * SERVICE / (2.0 * (1.0 - rho))


# ----------------------------------------------------------------------
# Layer 1: kernel-level M/D/1
# ----------------------------------------------------------------------

def run_md1(rho: float, horizon: float = 400_000.0, seed: int = 0):
    sim = Simulator()
    q = MonitoredStore(sim)
    rng = np.random.default_rng(seed)
    lam = rho / SERVICE

    def arrivals():
        while True:
            yield sim.timeout(rng.exponential(1.0 / lam))
            q.put(object())

    def server():
        while True:
            yield q.get()
            yield sim.timeout(SERVICE)

    sim.process(arrivals())
    sim.process(server())
    sim.run(until=horizon)
    return q.dwell.mean, q.dwell.count


@pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
def test_kernel_md1_matches_pollaczek_khinchine(rho):
    measured, n = run_md1(rho)
    assert n > 2000
    assert measured == pytest.approx(pk_wait(rho), rel=0.12)


# ----------------------------------------------------------------------
# Layer 2: engine-level shaped M/D/1
# ----------------------------------------------------------------------

def run_pair_queue(load_rho, seed=3):
    """Drive R(1,2,4)'s (0 -> 1) channel at utilization ``load_rho``."""
    topo = ERapidTopology(boards=2, nodes_per_board=4)
    cfg = ERapidConfig(topology=topo, tx_queue_capacity=64)
    per_node = load_rho / SERVICE / 4
    from repro.traffic.capacity import CapacityModel

    nc = CapacityModel.uniform_capacity(topo)
    wl = WorkloadSpec(pattern="complement", load=per_node / nc, seed=seed)
    plan = MeasurementPlan(warmup=20000, measure=80000, drain_limit=20000)
    engine = FastEngine(cfg, wl, plan)
    engine.run()
    q = engine.pair_queue(0, 1)
    return q.dwell.mean, q.dwell.count, engine


@pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
def test_engine_wait_bounded_by_pk(rho):
    measured, n, _ = run_pair_queue(rho)
    assert n > 700
    expected = pk_wait(rho)
    # Shaped arrivals: below the Poisson-input bound, above 40 % of it.
    assert 0.4 * expected < measured < 1.15 * expected, (
        f"rho={rho}: measured {measured:.1f} vs PK {expected:.1f}"
    )


def test_engine_wait_grows_convexly_with_rho():
    w3, _, _ = run_pair_queue(0.3)
    w5, _, _ = run_pair_queue(0.5)
    w8, _, _ = run_pair_queue(0.8)
    assert w3 < w5 < w8
    assert (w8 - w5) > 2.0 * (w5 - w3)


def test_engine_utilization_matches_offered_rho():
    """The channel's measured busy fraction equals the offered rho."""
    _, _, engine = run_pair_queue(0.6, seed=1)
    w = engine.srs.rwa.wavelength_for(0, 1)
    ch = engine.channels[(w, 1)]
    measured_util = ch.busy_signal.average(engine.sim.now)
    assert measured_util == pytest.approx(0.6, rel=0.1)
