"""BoundedJobQueue: priority order, FIFO ties, backpressure, close."""

import threading

import pytest

from repro.errors import QueueFullError, ServiceError
from repro.service.queue import BoundedJobQueue


def test_interactive_overtakes_queued_bulk():
    q = BoundedJobQueue(8)
    q.push(1, "bulk-1")
    q.push(1, "bulk-2")
    q.push(0, "interactive-1")
    assert q.pop(timeout=0) == "interactive-1"
    assert q.pop(timeout=0) == "bulk-1"
    assert q.pop(timeout=0) == "bulk-2"


def test_equal_rank_is_fifo():
    q = BoundedJobQueue(8)
    for name in ("a", "b", "c"):
        q.push(1, name)
    assert [q.pop(timeout=0) for _ in range(3)] == ["a", "b", "c"]


def test_push_beyond_depth_is_an_explicit_reject():
    q = BoundedJobQueue(2)
    q.push(1, "a")
    q.push(1, "b")
    with pytest.raises(QueueFullError, match="retry later"):
        q.push(0, "c")
    # The reject did not disturb the queued work.
    assert len(q) == 2
    assert q.pop(timeout=0) == "a"


def test_pop_timeout_returns_none():
    q = BoundedJobQueue(2)
    assert q.pop(timeout=0.01) is None


def test_close_wakes_blocked_pop_and_refuses_pushes():
    q = BoundedJobQueue(2)
    got = []
    t = threading.Thread(target=lambda: got.append(q.pop(timeout=5)))
    t.start()
    q.close()
    t.join(timeout=5)
    assert not t.is_alive()
    assert got == [None]
    with pytest.raises(ServiceError, match="closed"):
        q.push(0, "late")


def test_close_drains_remaining_items():
    q = BoundedJobQueue(4)
    q.push(1, "pending")
    q.close()
    assert q.pop(timeout=0) == "pending"
    assert q.pop(timeout=0) is None


def test_depth_must_be_positive():
    with pytest.raises(ServiceError):
        BoundedJobQueue(0)
