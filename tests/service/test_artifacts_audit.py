"""ArtifactStore and AuditLog: persistence, atomicity, corruption."""

import json

import pytest

from repro.errors import ServiceError
from repro.service.artifacts import (
    MANIFEST_FORMAT,
    ArtifactStore,
    default_artifact_root,
)
from repro.service.audit import AuditLog


def test_write_read_round_trip(tmp_path):
    store = ArtifactStore(tmp_path)
    manifest = {
        "job_id": "j1",
        "job_key": "k" * 64,
        "counts": {"total": 2, "hits": 1, "misses": 1, "executed": 1},
    }
    path = store.write_manifest(manifest)
    assert path == store.manifest_path("j1")
    read = store.read_manifest("j1")
    assert read["manifest_format"] == MANIFEST_FORMAT
    assert read["counts"] == manifest["counts"]
    assert store.list_job_ids() == ["j1"]


def test_manifest_needs_job_id(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ServiceError, match="job_id"):
        store.write_manifest({"counts": {}})


def test_missing_and_corrupt_manifests_raise(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ServiceError, match="no manifest"):
        store.read_manifest("ghost")
    path = store.manifest_path("j2")
    path.parent.mkdir(parents=True)
    path.write_text("{torn", encoding="utf-8")
    with pytest.raises(ServiceError, match="corrupt"):
        store.read_manifest("j2")
    path.write_text(json.dumps([1, 2]), encoding="utf-8")
    with pytest.raises(ServiceError, match="corrupt"):
        store.read_manifest("j2")


def test_write_leaves_no_temp_files(tmp_path):
    store = ArtifactStore(tmp_path)
    store.write_manifest({"job_id": "j1"})
    store.write_manifest({"job_id": "j1"})  # overwrite is atomic too
    leftovers = list(store.manifest_path("j1").parent.glob("*.tmp"))
    assert leftovers == []


def test_default_root_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("ERAPID_ARTIFACT_DIR", str(tmp_path / "elsewhere"))
    assert default_artifact_root() == tmp_path / "elsewhere"
    monkeypatch.delenv("ERAPID_ARTIFACT_DIR")
    assert default_artifact_root().name == "erapid"


def test_audit_appends_ordered_records(tmp_path):
    log = AuditLog(tmp_path / "audits.jsonl")
    log.append("submitted", job_id="j1")
    log.append("started", job_id="j1")
    rec = log.append("completed", job_id="j1", hits=3)
    assert rec["action"] == "completed" and rec["hits"] == 3
    records = log.read_all()
    assert [r["action"] for r in records] == [
        "submitted", "started", "completed",
    ]
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert all("ts" in r for r in records)


def test_audit_survives_torn_final_line(tmp_path):
    path = tmp_path / "audits.jsonl"
    log = AuditLog(path)
    log.append("submitted", job_id="j1")
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"action": "torn"')  # crash mid-append
    assert [r["action"] for r in log.read_all()] == ["submitted"]


def test_audit_read_missing_file_is_empty(tmp_path):
    assert AuditLog(tmp_path / "nope.jsonl").read_all() == []
