"""JobSpec: validation, wire round-trip, and key semantics.

The job key is the service's dedup identity, so its sensitivity matters
both ways: every work-defining field must move the key, and priority —
deliberately excluded — must not.
"""

import pytest

from repro.errors import JobSpecError
from repro.service.spec import PRIORITIES, JobSpec


def test_defaults_build_a_figure5_sweep():
    spec = JobSpec()
    assert spec.kind == "sweep"
    assert spec.total_runs == 20  # 5 loads x 4 policies
    assert spec.priority == "bulk"


def test_run_kind_defaults_to_interactive_priority():
    spec = JobSpec(kind="run", loads=(0.5,), policies=("P-B",))
    assert spec.priority == "interactive"
    assert spec.total_runs == 1


def test_run_kind_requires_exactly_one_load_and_policy():
    with pytest.raises(JobSpecError):
        JobSpec(kind="run", loads=(0.2, 0.4), policies=("P-B",))
    with pytest.raises(JobSpecError):
        JobSpec(kind="run", loads=(0.5,), policies=("P-B", "NP-B"))


@pytest.mark.parametrize(
    "bad",
    [
        dict(kind="mystery"),
        dict(pattern="nope"),
        dict(loads=()),
        dict(policies=()),
        dict(policies=("P-B", "bogus")),
        dict(loads=(0.0,)),
        dict(loads=(1.5,)),
        dict(loads=(0.2, 0.2)),
        dict(policies=("P-B", "P-B")),
        dict(priority="urgent"),
        dict(warmup=-1.0),
    ],
)
def test_invalid_specs_rejected(bad):
    with pytest.raises(JobSpecError):
        JobSpec(**bad)


def test_round_trip_preserves_identity():
    spec = JobSpec(
        pattern="complement",
        loads=(0.2, 0.6),
        policies=("NP-NB", "P-B"),
        boards=4,
        nodes_per_board=4,
        seed=7,
        priority="interactive",
    )
    again = JobSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.job_key() == spec.job_key()


def test_from_dict_rejects_unknown_fields():
    data = JobSpec().to_dict()
    data["gpu"] = True
    with pytest.raises(JobSpecError, match="unknown job spec fields"):
        JobSpec.from_dict(data)


def test_from_dict_rejects_non_mapping_and_bad_sequences():
    with pytest.raises(JobSpecError):
        JobSpec.from_dict([1, 2, 3])
    with pytest.raises(JobSpecError):
        JobSpec.from_dict({"loads": 0.5})


def test_key_moves_with_every_work_field():
    base = JobSpec()
    variants = [
        JobSpec(pattern="complement"),
        JobSpec(loads=(0.1, 0.3, 0.5, 0.7)),
        JobSpec(policies=("NP-NB", "P-NB", "NP-B")),
        JobSpec(boards=4),
        JobSpec(nodes_per_board=4),
        JobSpec(seed=2),
        JobSpec(warmup=4000.0),
        JobSpec(measure=6000.0),
        JobSpec(drain_limit=30000.0),
    ]
    keys = {base.job_key()} | {v.job_key() for v in variants}
    assert len(keys) == len(variants) + 1  # all distinct


def test_priority_does_not_move_the_key():
    assert (
        JobSpec(priority="interactive").job_key()
        == JobSpec(priority="bulk").job_key()
    )


def test_key_includes_kernel_version():
    from repro.sim.kernel import KERNEL_VERSION

    payload = JobSpec().work_payload()
    assert payload["kernel_version"] == KERNEL_VERSION


def test_run_descriptions_are_policy_major_load_ordered():
    spec = JobSpec(loads=(0.2, 0.4), policies=("NP-NB", "P-B"))
    descs = spec.run_descriptions()
    assert [(d.policy, d.load) for d in descs] == [
        ("NP-NB", 0.2),
        ("NP-NB", 0.4),
        ("P-B", 0.2),
        ("P-B", 0.4),
    ]
    for d in descs:
        assert d.workload.pattern == spec.pattern
        assert d.workload.seed == spec.seed
        assert d.config.topology.boards == spec.boards


def test_priority_rank_matches_registry():
    assert JobSpec(priority="interactive").priority_rank() == PRIORITIES[
        "interactive"
    ]
    assert JobSpec(priority="bulk").priority_rank() == PRIORITIES["bulk"]


# ----------------------------------------------------------------------
# Engine field (batch tier)
# ----------------------------------------------------------------------
def test_engine_defaults_to_fast_and_validates():
    assert JobSpec().engine == "fast"
    assert JobSpec(engine="batch").engine == "batch"
    with pytest.raises(JobSpecError):
        JobSpec(engine="warp")


def test_fast_engine_keeps_historical_job_keys_stable():
    """engine="fast" must not enter the payload: every job key minted
    before the field existed has to keep resolving to the same work."""
    payload = JobSpec().work_payload()
    assert "engine" not in payload
    assert JobSpec().job_key() == JobSpec(engine="fast").job_key()


def test_batch_engine_moves_the_job_key():
    assert JobSpec(engine="batch").job_key() != JobSpec().job_key()
    assert JobSpec(engine="batch").work_payload()["engine"] == "batch"


def test_engine_round_trips_through_the_wire_format():
    spec = JobSpec(engine="batch")
    assert spec.to_dict()["engine"] == "batch"
    assert JobSpec.from_dict(spec.to_dict()) == spec
