"""Acceptance: the service is bit-identical to a direct ``run_sweep``.

A 16-run sweep (4 policies x 4 loads) submitted twice must execute 16
runs the first time and 0 the second (manifest records 16/16 cache hits),
and both jobs' ``sweep_fingerprint`` must equal the fingerprint of a
direct serial :func:`repro.experiments.sweep.run_sweep` on the same
parameters — the service adds orchestration, never drift.
"""

from repro.analysis.determinism import sweep_fingerprint
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.metrics.collector import MeasurementPlan
from repro.perf.cache import RunCache
from repro.service.artifacts import ArtifactStore
from repro.service.orchestrator import SweepService
from repro.service.spec import JobSpec

LOADS = (0.1, 0.2, 0.3, 0.4)
POLICIES = ("NP-NB", "P-NB", "NP-B", "P-B")
PLAN = dict(warmup=200.0, measure=600.0, drain_limit=1500.0)


def test_sweep_twice_through_service_matches_direct_run_sweep(tmp_path):
    spec = JobSpec(
        loads=LOADS,
        policies=POLICIES,
        boards=2,
        nodes_per_board=4,
        seed=1,
        **PLAN,
    )
    assert spec.total_runs == 16

    cache = RunCache(tmp_path / "cache")
    store = ArtifactStore(tmp_path / "store")
    service = SweepService(cache, store).start()
    try:
        first = service.submit(spec)
        first_exec = first.wait(timeout=600)
        second = service.submit(
            JobSpec(
                loads=LOADS,
                policies=POLICIES,
                boards=2,
                nodes_per_board=4,
                seed=1,
                **PLAN,
            )
        )
        second_exec = second.wait(timeout=600)
    finally:
        service.stop()

    # First pass executed everything; second was answered from disk.
    assert (first_exec.executed, first_exec.hits) == (16, 0)
    assert (second_exec.executed, second_exec.hits) == (0, 16)
    manifest = store.read_manifest(second.job_id)
    assert manifest["counts"] == {
        "total": 16, "hits": 16, "misses": 0, "executed": 0,
    }
    assert all(r["hit"] for r in manifest["runs"])

    # Bit-identity against the direct serial sweep path.
    direct = run_sweep(
        SweepSpec(
            pattern="uniform",
            loads=LOADS,
            policies=POLICIES,
            boards=2,
            nodes_per_board=4,
            seed=1,
            plan=MeasurementPlan(**PLAN),
        ),
        jobs=1,
    )
    expected = sweep_fingerprint(direct)
    assert first_exec.fingerprint == expected
    assert second_exec.fingerprint == expected
    for policy in direct:
        assert [r.to_dict() for r in direct[policy]] == [
            r.to_dict() for r in first_exec.results[policy]
        ]
