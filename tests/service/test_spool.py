"""Spool front end: atomic submissions, status mirroring, bad input."""

import json

from repro.metrics.collector import RunResult
from repro.perf.cache import RunCache
from repro.service.artifacts import ArtifactStore
from repro.service.orchestrator import SweepService
from repro.service.spec import JobSpec
from repro.service.spool import (
    SpoolServer,
    list_statuses,
    read_status,
    status_path,
    submit_to_spool,
)


def fake_execute(tasks, jobs=1, on_result=None):
    results = []
    for i, t in enumerate(tasks):
        load = t.workload.load
        r = RunResult(
            throughput=load * 0.9,
            offered=load,
            avg_latency=10.0,
            p99_latency=20.0,
            max_latency=30.0,
            power_mw=1000.0 * load,
        )
        results.append(r)
        if on_result is not None:
            on_result(i, r)
    return results


def tiny_spec(**overrides):
    defaults = dict(
        loads=(0.2, 0.4),
        policies=("NP-NB", "P-B"),
        boards=2,
        nodes_per_board=4,
        warmup=200.0,
        measure=600.0,
        drain_limit=1500.0,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


def make_server(tmp_path, **service_kwargs):
    service = SweepService(
        RunCache(tmp_path / "cache"),
        ArtifactStore(tmp_path / "store"),
        execute=fake_execute,
        **service_kwargs,
    ).start()
    return SpoolServer(tmp_path / "spool", service), service


def test_submit_serve_status_round_trip(tmp_path):
    server, service = make_server(tmp_path)
    try:
        spec = tiny_spec()
        key = submit_to_spool(tmp_path / "spool", spec)
        assert key == spec.job_key()
        server.serve_once(timeout=60)

        status = read_status(tmp_path / "spool", key)
        assert status is not None
        assert status["state"] == "completed"
        assert status["counts"] == {"total": 4, "hits": 0, "executed": 4}
        assert status["runs_done"] == 4
        # The incoming spec file was consumed.
        assert not list((server.spool / "incoming").glob("*.json"))
        assert [s["job_key"] for s in list_statuses(tmp_path / "spool")] == [
            key
        ]
    finally:
        service.stop()


def test_second_serve_is_all_cache_hits(tmp_path):
    server, service = make_server(tmp_path)
    try:
        key = submit_to_spool(tmp_path / "spool", tiny_spec())
        server.serve_once(timeout=60)
        first = read_status(tmp_path / "spool", key)

        submit_to_spool(tmp_path / "spool", tiny_spec())
        server.serve_once(timeout=60)
        second = read_status(tmp_path / "spool", key)

        assert second["counts"] == {"total": 4, "hits": 4, "executed": 0}
        assert second["sweep_fingerprint"] == first["sweep_fingerprint"]
        assert second["job_id"] != first["job_id"]
    finally:
        service.stop()


def test_invalid_submission_becomes_invalid_status(tmp_path):
    server, service = make_server(tmp_path)
    try:
        bad = server.spool / "incoming" / "bad.json"
        bad.write_text(json.dumps({"kind": "mystery"}), encoding="utf-8")
        assert server.scan_once() == 1
        status = read_status(tmp_path / "spool", "bad")
        assert status["state"] == "invalid"
        assert "mystery" in status["error"]
        assert not bad.exists()
    finally:
        service.stop()


def test_unparseable_submission_becomes_invalid_status(tmp_path):
    server, service = make_server(tmp_path)
    try:
        bad = server.spool / "incoming" / "torn.json"
        bad.write_text('{"kind": "swe', encoding="utf-8")
        server.scan_once()
        assert read_status(tmp_path / "spool", "torn")["state"] == "invalid"
    finally:
        service.stop()


def test_status_filename_is_the_job_key(tmp_path):
    spec = tiny_spec()
    path = status_path(tmp_path / "spool", spec.job_key())
    assert path.name == f"{spec.job_key()}.json"
    assert read_status(tmp_path / "spool", spec.job_key()) is None


def test_inflight_duplicates_in_spool_dedupe(tmp_path):
    server, service = make_server(tmp_path)
    try:
        submit_to_spool(tmp_path / "spool", tiny_spec())
        submit_to_spool(tmp_path / "spool", tiny_spec())
        submit_to_spool(tmp_path / "spool", tiny_spec())
        server.serve_once(timeout=60)
        statuses = list_statuses(tmp_path / "spool")
        assert len(statuses) == 1
        assert statuses[0]["state"] == "completed"
        actions = [r["action"] for r in service.audit.read_all()]
        # Whether the duplicates attach in-flight or hit the cache as
        # fresh jobs depends on scan/execute interleaving, but work must
        # never run twice: the pool executed exactly 4 tasks total.
        assert actions.count("submitted") + actions.count("deduped") == 3
        stats = service.cache.persistent_stats()
        assert stats["puts"] == 4
    finally:
        service.stop()
