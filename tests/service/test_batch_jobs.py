"""Service execution of batch-engine jobs: routing, keyspaces, replay."""

import json

from repro.analysis.equivalence import compare_runs
from repro.perf.cache import RunCache
from repro.service.runner import execute_job
from repro.service.spec import JobSpec


def batch_spec(**overrides):
    fields = dict(
        kind="sweep",
        pattern="complement",
        loads=(0.2, 0.5),
        policies=("P-B", "NP-NB"),
        boards=4,
        nodes_per_board=4,
        warmup=500.0,
        measure=1000.0,
        drain_limit=2000.0,
        engine="batch",
    )
    fields.update(overrides)
    return JobSpec(**fields)


def test_batch_job_runs_on_the_batch_engine(tmp_path):
    cache = RunCache(tmp_path)
    execution = execute_job(batch_spec(), cache, jobs=1)
    assert execution.executed == 4 and execution.hits == 0
    for runs in execution.results.values():
        for result in runs:
            assert result.extra["engine"] == "batch"
    # Entries land in the batch keyspace only.
    stats = cache.by_engine_stats()
    assert stats["batch"]["entries"] == 4
    assert stats["fast"]["entries"] == 0


def test_batch_job_replays_from_cache_bit_identically(tmp_path):
    cache = RunCache(tmp_path)
    first = execute_job(batch_spec(), cache, jobs=1)
    second = execute_job(batch_spec(), cache, jobs=1)
    assert second.hits == 4 and second.executed == 0
    assert second.fingerprint == first.fingerprint


def test_batch_and_fast_jobs_have_disjoint_caches(tmp_path):
    cache = RunCache(tmp_path)
    execute_job(batch_spec(), cache, jobs=1)
    fast = execute_job(batch_spec(engine="fast"), cache, jobs=1)
    # Same work grid, different engine -> no cross-keyspace hits.
    assert fast.hits == 0 and fast.executed == 4
    assert cache.by_engine_stats()["fast"]["entries"] == 4


def test_batch_job_results_match_fast_within_tolerances(tmp_path):
    batch = execute_job(batch_spec(), None, jobs=1)
    fast = execute_job(batch_spec(engine="fast"), None, jobs=1)
    for policy in ("P-B", "NP-NB"):
        report = compare_runs(fast.results[policy], batch.results[policy])
        assert report.ok, report.to_dict()["failures"]


def test_injected_execute_overrides_batch_routing(tmp_path):
    calls = []

    def fake_execute(tasks, jobs=1, on_result=None):
        calls.append(len(tasks))
        results = []
        for i, task in enumerate(tasks):
            from repro.perf.executor import execute_run

            result = execute_run(task)
            results.append(result)
            if on_result is not None:
                on_result(i, result)
        return results

    execution = execute_job(batch_spec(), None, jobs=1, execute=fake_execute)
    assert calls == [4]
    # The injected executor ran the scalar path; nothing claims "batch".
    for runs in execution.results.values():
        for result in runs:
            assert result.extra.get("engine") != "batch"
    assert execution.shards == ()  # shard reports come from the real path


# ----------------------------------------------------------------------
# Sharded parallel execution
# ----------------------------------------------------------------------
def test_sharded_job_is_fingerprint_identical_across_layouts(tmp_path):
    """jobs and slab_shard are pure scheduling: every layout must produce
    the same sweep fingerprint as single-process execution."""
    baseline = execute_job(batch_spec(), None, jobs=1)
    pooled = execute_job(batch_spec(), None, jobs=2)
    resharded = execute_job(batch_spec(), None, jobs=2, slab_shard=1)
    assert pooled.fingerprint == baseline.fingerprint
    assert resharded.fingerprint == baseline.fingerprint

    # The shard reports mirror the layout actually executed.
    assert all(s.kind == "batch" for s in baseline.shards)
    assert sum(s.runs for s in baseline.shards) == 4
    assert len(resharded.shards) == 4  # slab_shard=1 -> one run per shard
    for report in resharded.shards:
        assert report.runs == 1
        assert report.seconds > 0
        assert report.payload_bytes > 0


def test_manifest_records_shard_layout(tmp_path):
    """A batch job run through the real service persists its shard layout
    and per-shard timings in the artifact manifest."""
    from repro.service.artifacts import ArtifactStore
    from repro.service.orchestrator import SweepService

    cache = RunCache(tmp_path / "cache")
    store = ArtifactStore(tmp_path / "store")
    service = SweepService(cache, store, jobs=2).start()
    try:
        handle = service.submit(batch_spec())
        execution = handle.wait(timeout=120)
    finally:
        service.stop()

    assert execution.shards
    status = handle.status()
    assert status["shards"]["total"] == len(execution.shards)
    assert status["shards"]["batch_runs"] == 4

    from pathlib import Path

    manifest = json.loads(Path(status["manifest"]).read_text())
    layout = manifest["shard_layout"]
    assert layout["jobs"] == 2
    assert [s["shard_id"] for s in layout["shards"]] == [
        s.shard_id for s in execution.shards
    ]
    for entry in layout["shards"]:
        assert entry["kind"] == "batch"
        assert entry["runs"] >= 1
        assert entry["seconds"] > 0
