"""SweepService semantics: dedup, priority, backpressure, failure.

These tests run the real scheduler thread but inject a fake ``execute``
function (the :data:`repro.service.runner.ExecuteFn` seam), so they cover
the orchestration contract — one execution for N identical submissions,
interactive-overtakes-bulk, explicit queue-full rejects — in milliseconds
without spawning simulation processes.
"""

import threading
import time

import pytest

from repro.errors import JobFailedError, QueueFullError, ServiceError
from repro.metrics.collector import RunResult
from repro.perf.cache import RunCache
from repro.service.artifacts import ArtifactStore
from repro.service.orchestrator import SweepService
from repro.service.spec import JobSpec

WAIT = 30.0  # generous terminal-state timeout; tests finish in ms


def wait_until(predicate, timeout=WAIT):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError("test predicate never became true")
        time.sleep(0.001)


def fake_result(task):
    """Deterministic fabricated metrics keyed on the task's workload."""
    load = task.workload.load
    return RunResult(
        throughput=load * 0.9,
        offered=load,
        avg_latency=10.0 + load,
        p99_latency=20.0 + load,
        max_latency=30.0 + load,
        power_mw=1000.0 * load,
    )


class FakePool:
    """Injectable execute fn: counts calls, optionally gated on an event."""

    def __init__(self, gate=None, fail=False):
        self.gate = gate
        self.fail = fail
        self.calls = []  # one entry per invocation: list of loads
        self.lock = threading.Lock()

    def __call__(self, tasks, jobs=1, on_result=None):
        if self.gate is not None and not self.gate.wait(timeout=WAIT):
            raise TimeoutError("test gate never opened")
        if self.fail:
            raise RuntimeError("injected pool failure")
        with self.lock:
            self.calls.append([t.workload.load for t in tasks])
        results = [fake_result(t) for t in tasks]
        for i, r in enumerate(results):
            if on_result is not None:
                on_result(i, r)
        return results


def make_service(tmp_path, execute, **kwargs):
    cache = RunCache(tmp_path / "cache")
    store = ArtifactStore(tmp_path / "store")
    service = SweepService(cache, store, execute=execute, **kwargs)
    return service, cache, store


def tiny_spec(**overrides):
    defaults = dict(
        loads=(0.2, 0.4),
        policies=("NP-NB", "P-B"),
        boards=2,
        nodes_per_board=4,
        warmup=200.0,
        measure=600.0,
        drain_limit=1500.0,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


def test_n_identical_inflight_submissions_execute_once(tmp_path):
    gate = threading.Event()
    pool = FakePool(gate=gate)
    service, _, store = make_service(tmp_path, pool)
    service.start()
    try:
        spec = tiny_spec()
        first = service.submit(spec)
        # Wait until the scheduler holds the job open inside the gated
        # pool, then pile identical submissions onto it.
        wait_until(lambda: first.state == "running")
        others = [service.submit(tiny_spec()) for _ in range(4)]
        assert all(h.deduped for h in others)
        assert not first.deduped
        assert {h.job_id for h in others} == {first.job_id}

        gate.set()
        executions = [h.wait(timeout=WAIT) for h in [first, *others]]

        # One execution, five identical results.
        assert len(pool.calls) == 1
        assert len({id(e) for e in executions}) == 1
        assert len({e.fingerprint for e in executions}) == 1
        manifest = store.read_manifest(first.job_id)
        assert manifest["subscribers"] == 5
        assert manifest["counts"] == {
            "total": 4, "hits": 0, "misses": 4, "executed": 4,
        }
    finally:
        gate.set()
        service.stop()


def test_resubmit_after_completion_is_all_cache_hits(tmp_path):
    pool = FakePool()
    service, cache, store = make_service(tmp_path, pool)
    service.start()
    try:
        spec = tiny_spec()
        first = service.submit(spec).wait(timeout=WAIT)
        assert first.executed == 4 and first.hits == 0

        again = service.submit(tiny_spec())
        assert not again.deduped  # the first job already left the table
        second = again.wait(timeout=WAIT)

        assert second.hits == 4 and second.executed == 0
        assert second.fingerprint == first.fingerprint
        manifest = store.read_manifest(again.job_id)
        assert manifest["counts"] == {
            "total": 4, "hits": 4, "misses": 0, "executed": 0,
        }
        assert all(r["hit"] for r in manifest["runs"])
        assert manifest["sweep_fingerprint"] == first.fingerprint
        # The pool saw work exactly once (the second call had no tasks).
        assert [c for c in pool.calls if c] == [[0.2, 0.4, 0.2, 0.4]]
        assert cache.entry_count() == 4
    finally:
        service.stop()


def test_interactive_overtakes_queued_bulk(tmp_path):
    gate = threading.Event()
    pool = FakePool(gate=gate)
    service, _, _ = make_service(tmp_path, pool, queue_depth=8)
    service.start()
    try:
        blocker = service.submit(tiny_spec())
        wait_until(lambda: blocker.state == "running")
        bulk = service.submit(tiny_spec(loads=(0.3,), priority="bulk"))
        inter = service.submit(
            tiny_spec(loads=(0.7,), priority="interactive")
        )
        gate.set()
        bulk.wait(timeout=WAIT)
        inter.wait(timeout=WAIT)
        # Call order: blocker first, then the interactive job overtakes
        # the earlier-submitted bulk job.
        assert pool.calls[0] == [0.2, 0.4, 0.2, 0.4]
        assert pool.calls[1] == [0.7, 0.7]
        assert pool.calls[2] == [0.3, 0.3]
    finally:
        gate.set()
        service.stop()


def test_full_queue_rejects_with_audit_record(tmp_path):
    gate = threading.Event()
    pool = FakePool(gate=gate)
    service, _, _ = make_service(tmp_path, pool, queue_depth=1)
    service.start()
    try:
        running = service.submit(tiny_spec())
        wait_until(lambda: running.state == "running")
        service.submit(tiny_spec(loads=(0.3,)))  # fills the queue
        with pytest.raises(QueueFullError):
            service.submit(tiny_spec(loads=(0.5,)))
        actions = [r["action"] for r in service.audit.read_all()]
        assert "rejected" in actions
    finally:
        gate.set()
        service.stop()


def test_failed_job_raises_and_audits(tmp_path):
    pool = FakePool(fail=True)
    service, _, _ = make_service(tmp_path, pool)
    service.start()
    try:
        handle = service.submit(tiny_spec())
        with pytest.raises(JobFailedError, match="injected pool failure"):
            handle.wait(timeout=WAIT)
        assert handle.state == "failed"
        assert service.drain(timeout=WAIT)
        actions = [r["action"] for r in service.audit.read_all()]
        assert actions.count("failed") == 1
        assert "completed" not in actions
    finally:
        service.stop()


def test_stream_events_sees_every_run(tmp_path):
    pool = FakePool()
    service, _, _ = make_service(tmp_path, pool)
    service.start()
    try:
        handle = service.submit(tiny_spec())
        events = list(handle.stream_events(timeout=WAIT))
        assert len(events) == 4
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert {e["kind"] for e in events} == {"run_done"}
        assert handle.state == "completed"
    finally:
        service.stop()


def test_submit_after_stop_is_refused(tmp_path):
    service, _, _ = make_service(tmp_path, FakePool())
    service.start()
    service.stop()
    with pytest.raises(ServiceError, match="stopping"):
        service.submit(tiny_spec())


def test_audit_trail_orders_lifecycle(tmp_path):
    pool = FakePool()
    service, _, _ = make_service(tmp_path, pool)
    service.start()
    try:
        handle = service.submit(tiny_spec())
        handle.wait(timeout=WAIT)
    finally:
        service.stop()
    actions = [r["action"] for r in service.audit.read_all()]
    assert actions == ["submitted", "started", "completed"]
