"""Batch engine tier: coverage routing, slab grouping, fidelity gates.

The vectorized :class:`~repro.core.batch.BatchEngine` is only allowed to
exist because of the contracts pinned here: permutation-pattern injection
is bit-identical to the scalar :class:`~repro.core.engine.FastEngine`,
every other metric stays inside the tolerances declared in
:mod:`repro.analysis.equivalence`, and points the vectorized model does
not cover fall back to the scalar engine with scalar-identical results.
"""

import pytest

from repro.analysis.equivalence import (
    bit_identity_fingerprint,
    compare_runs,
)
from repro.core.batch import (
    BATCH_KERNEL_VERSION,
    BatchEngine,
    coverage_gap,
    slab_key,
)
from repro.core.config import ERapidConfig
from repro.core.policies import POLICIES
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.perf.executor import RunTask, execute_tasks, run_sweep_batched
from repro.traffic.workload import WorkloadSpec

PLAN = MeasurementPlan(warmup=500, measure=1000, drain_limit=2000)


def make_config(policy="P-B", boards=4, nodes=4):
    return ERapidConfig(
        topology=ERapidTopology(boards=boards, nodes_per_board=nodes),
        policy=POLICIES[policy],
    )


def grid_tasks(patterns=("complement", "uniform"), loads=(0.2, 0.6)):
    tasks = []
    for pattern in patterns:
        for policy in ("NP-NB", "P-NB", "NP-B", "P-B"):
            for load in loads:
                tasks.append(
                    RunTask(
                        make_config(policy),
                        WorkloadSpec(pattern=pattern, load=load, seed=1),
                        PLAN,
                    )
                )
    return tasks


# ----------------------------------------------------------------------
# Coverage
# ----------------------------------------------------------------------
def test_coverage_gap_accepts_the_paper_grid():
    for pattern in ("uniform", "complement", "butterfly", "perfect_shuffle"):
        workload = WorkloadSpec(pattern=pattern, load=0.5, seed=1)
        assert coverage_gap(make_config(), workload, PLAN) is None, pattern


def test_coverage_gap_reasons_stay_accurate():
    config = make_config()
    poisson = WorkloadSpec(pattern="complement", load=0.5, process="poisson")
    assert "not vectorized" in coverage_gap(config, poisson, PLAN)

    hotspot = WorkloadSpec(pattern="hotspot", load=0.5)
    assert "neither uniform nor a permutation" in coverage_gap(
        config, hotspot, PLAN
    )

    fractional = MeasurementPlan(warmup=500.5, measure=1000, drain_limit=2000)
    ok = WorkloadSpec(pattern="complement", load=0.5)
    assert "integer cycle grid" in coverage_gap(config, ok, fractional)


def capped_config(cap, policy="P-B"):
    from dataclasses import replace

    capped = replace(
        POLICIES[policy], name=f"{policy}[cap={cap}]", max_grants_per_dest=cap
    )
    return ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4), policy=capped
    )


def test_limited_dbr_policies_are_batch_covered():
    """max_grants_per_dest no longer forces the scalar fallback: the
    vectorized DBR planner takes the cap directly."""
    workload = WorkloadSpec(pattern="complement", load=0.5, seed=1)
    for cap in (0, 1, 2, None):
        assert coverage_gap(capped_config(cap), workload, PLAN) is None, cap


def test_limited_dbr_matches_scalar_engine():
    """The §5 "limited flexibility" ablation axis on the batch engine:
    every grant cap must stay inside the declared tolerances against the
    scalar engine, and capped grant counts must agree exactly (the cap is
    enforced by the same dbr_plan on both paths)."""
    workload = WorkloadSpec(pattern="complement", load=0.6, seed=1)
    tasks = [
        RunTask(capped_config(cap), workload, PLAN) for cap in (0, 1, 2, None)
    ]
    batch = run_sweep_batched(tasks)
    scalar = execute_tasks(tasks)
    for result in batch:
        assert result.extra["engine"] == "batch"
    report = compare_runs(scalar, batch)
    assert report.ok, report.to_dict()["failures"]
    for b, s in zip(batch, scalar):
        assert b.extra["grants"] == s.extra["grants"]
    # A zero cap means DBR can never move a wavelength; tighter caps can
    # never grant more than looser ones on the same workload.
    grants = [r.extra["grants"] for r in batch]
    assert grants[0] == 0
    assert grants[0] <= grants[1] <= grants[2] <= grants[3]


# ----------------------------------------------------------------------
# Slab grouping
# ----------------------------------------------------------------------
def test_slab_key_lets_policy_pattern_load_and_seed_vary():
    base = slab_key(
        make_config("P-B"), WorkloadSpec("complement", 0.2, seed=1), PLAN
    )
    assert base == slab_key(
        make_config("NP-NB"), WorkloadSpec("uniform", 0.8, seed=7), PLAN
    )


def test_slab_key_splits_on_grid_shaping_inputs():
    base = slab_key(make_config(), WorkloadSpec("complement", 0.2), PLAN)
    other_plan = MeasurementPlan(warmup=500, measure=2000, drain_limit=4000)
    assert base != slab_key(
        make_config(), WorkloadSpec("complement", 0.2), other_plan
    )
    assert base != slab_key(
        make_config(boards=8, nodes=8), WorkloadSpec("complement", 0.2), PLAN
    )


# ----------------------------------------------------------------------
# Fidelity vs the scalar engine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_grid():
    tasks = grid_tasks()
    batch = run_sweep_batched(tasks)
    scalar = execute_tasks(tasks)
    return tasks, batch, scalar


def test_batch_results_within_declared_tolerances(small_grid):
    _, batch, scalar = small_grid
    report = compare_runs(scalar, batch)
    assert report.ok, report.to_dict()["failures"]
    assert report.total == len(batch)


def test_permutation_injection_is_bit_identical(small_grid):
    tasks, batch, scalar = small_grid
    perm = [
        i for i, t in enumerate(tasks) if t.workload.pattern != "uniform"
    ]
    assert perm
    for i in perm:
        assert batch[i].offered == scalar[i].offered
        assert batch[i].labeled_injected == scalar[i].labeled_injected
    assert bit_identity_fingerprint(
        [batch[i] for i in perm]
    ) == bit_identity_fingerprint([scalar[i] for i in perm])


def test_batch_results_are_tagged(small_grid):
    _, batch, _ = small_grid
    for result in batch:
        assert result.extra["engine"] == "batch"
        assert result.extra["events"] == 0


def test_batch_run_is_deterministic():
    tasks = grid_tasks(patterns=("complement",), loads=(0.4,))
    first = BatchEngine([(t.config, t.workload, t.plan) for t in tasks]).run()
    second = BatchEngine([(t.config, t.workload, t.plan) for t in tasks]).run()
    assert [r.to_dict() for r in first] == [r.to_dict() for r in second]


# ----------------------------------------------------------------------
# Struct-of-arrays result transport
# ----------------------------------------------------------------------
def test_payload_round_trip_is_bit_identical_to_run():
    """run() is defined as decode_payload(run_payload()), so the compact
    transport a pool worker ships must reconstruct the exact RunResults
    in-process execution produces."""
    import pickle

    from repro.core.batch import BatchResultPayload, decode_payload

    tasks = grid_tasks()
    runs = [(t.config, t.workload, t.plan) for t in tasks]
    direct = BatchEngine(runs).run()
    payload = BatchEngine(runs).run_payload()
    assert isinstance(payload, BatchResultPayload)
    assert len(payload) == len(tasks)
    assert payload.nbytes > 0

    # Through a pickle round trip, as the process pool ships it.
    wire = pickle.loads(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
    decoded = decode_payload(wire, runs)
    assert [r.to_dict() for r in decoded] == [r.to_dict() for r in direct]


def test_decode_payload_rejects_length_mismatch():
    from repro.errors import ConfigurationError

    from repro.core.batch import decode_payload

    tasks = grid_tasks(patterns=("complement",), loads=(0.4,))
    runs = [(t.config, t.workload, t.plan) for t in tasks]
    payload = BatchEngine(runs).run_payload()
    with pytest.raises(ConfigurationError):
        decode_payload(payload, runs[:-1])


# ----------------------------------------------------------------------
# Executor routing
# ----------------------------------------------------------------------
def test_run_sweep_batched_falls_back_for_uncovered_points():
    covered = RunTask(
        make_config(), WorkloadSpec("complement", 0.3, seed=1), PLAN
    )
    uncovered = RunTask(
        make_config(), WorkloadSpec("hotspot", 0.3, seed=1), PLAN
    )
    tasks = [uncovered, covered, uncovered]
    results = run_sweep_batched(tasks)
    assert len(results) == 3
    assert results[1].extra["engine"] == "batch"
    # Fallback points run the scalar engine and are bit-identical to it.
    scalar = execute_tasks([uncovered])
    assert results[0].to_dict() == scalar[0].to_dict()
    assert results[2].to_dict() == scalar[0].to_dict()
    assert results[0].extra.get("engine") != "batch"


def test_run_sweep_batched_reports_results_by_task_index():
    tasks = grid_tasks(patterns=("complement",), loads=(0.3,))
    seen = {}
    results = run_sweep_batched(
        tasks, on_result=lambda i, r: seen.__setitem__(i, r)
    )
    assert sorted(seen) == list(range(len(tasks)))
    for i, result in enumerate(results):
        assert seen[i] is result


def test_run_sweep_batched_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_sweep_batched([], jobs=0)


def test_batch_kernel_version_is_declared():
    assert isinstance(BATCH_KERNEL_VERSION, int)
    assert BATCH_KERNEL_VERSION >= 1


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
def test_run_sweep_engine_batch_matches_direct_batch_execution():
    from repro.experiments.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        pattern="complement",
        loads=(0.3,),
        policies=("P-B",),
        boards=4,
        nodes_per_board=4,
        plan=PLAN,
    )
    results = run_sweep(spec, engine="batch")
    assert results["P-B"][0].extra["engine"] == "batch"
    reference = run_sweep(spec)
    report = compare_runs(reference["P-B"], results["P-B"])
    assert report.ok


def test_run_sweep_rejects_unknown_engine():
    from repro.errors import ConfigurationError
    from repro.experiments.sweep import SweepSpec, run_sweep

    spec = SweepSpec(pattern="complement", loads=(0.3,), plan=PLAN)
    with pytest.raises(ConfigurationError):
        run_sweep(spec, engine="warp")


# ----------------------------------------------------------------------
# Event-horizon time-skipping
# ----------------------------------------------------------------------
def payload_bytes(engine):
    """Every payload array, byte for byte — the bit-identity witness."""
    from dataclasses import fields

    payload = engine.run_payload()
    return tuple(
        getattr(payload, f.name).tobytes() for f in fields(payload)
    )


def run_pair(runs):
    """(skip payload bytes, no-skip payload bytes, skip telemetry)."""
    skip = BatchEngine(runs, time_skip=True)
    skip_bytes = payload_bytes(skip)
    noskip = BatchEngine(runs, time_skip=False)
    noskip_bytes = payload_bytes(noskip)
    return skip_bytes, noskip_bytes, skip.telemetry


def test_time_skip_is_bit_identical_on_a_mixed_grid(small_grid):
    tasks, _, _ = small_grid
    runs = [(t.config, t.workload, t.plan) for t in tasks]
    skip_bytes, noskip_bytes, telemetry = run_pair(runs)
    assert skip_bytes == noskip_bytes
    assert telemetry.cycles_skipped >= 0
    assert (
        telemetry.cycles_executed + telemetry.cycles_skipped
        <= telemetry.horizon
    )


def test_time_skip_identity_on_single_run_slab():
    runs = [
        (
            make_config("P-B"),
            WorkloadSpec(pattern="complement", load=0.1, seed=1),
            PLAN,
        )
    ]
    skip_bytes, noskip_bytes, telemetry = run_pair(runs)
    assert skip_bytes == noskip_bytes
    # A 1-run slab at load 0.1 is sparse: skipping must actually engage.
    assert telemetry.cycles_skipped > 0
    assert telemetry.cycles_executed < telemetry.horizon


def test_time_skip_identity_when_all_runs_drain_in_one_chunk():
    """Every run drains by the first drain-check grid point, so the
    engine compacts the whole slab once and breaks immediately."""
    runs = [
        (
            make_config(policy),
            WorkloadSpec(pattern="complement", load=0.2, seed=1),
            PLAN,
        )
        for policy in ("NP-NB", "P-NB", "NP-B", "P-B")
    ]
    skip_bytes, noskip_bytes, telemetry = run_pair(runs)
    assert skip_bytes == noskip_bytes
    assert telemetry.compactions == 1
    assert telemetry.cycles_executed < telemetry.horizon


def test_time_skip_identity_with_zero_injections():
    """load=0.0 schedules no packets at all: the pure-skip path — the
    loop must visit only the mandatory control-plane/drain stops."""
    for policy in ("NP-NB", "P-B"):
        runs = [
            (
                make_config(policy),
                WorkloadSpec(pattern="complement", load=0.0, seed=1),
                PLAN,
            )
        ]
        skip_bytes, noskip_bytes, telemetry = run_pair(runs)
        assert skip_bytes == noskip_bytes, policy
        assert telemetry.injections == 0
        assert telemetry.deliveries == 0
        # Nothing to simulate: a handful of executed cycles at most.
        assert telemetry.cycles_executed <= 8


def test_time_skip_identity_across_shard_layouts(small_grid):
    """run_sweep_batched(time_skip=...) must not change a result bit
    under any jobs layout (the bench enforces the same on the full
    grid)."""
    from repro.analysis.determinism import sweep_fingerprint

    tasks, batch, _ = small_grid
    base = sweep_fingerprint({"grid": batch})
    for jobs in (1, 2):
        res = run_sweep_batched(tasks, jobs=jobs, time_skip=False)
        assert sweep_fingerprint({"grid": res}) == base, jobs


def test_engine_exposes_telemetry_in_both_modes():
    runs = [
        (
            make_config("P-NB"),
            WorkloadSpec(pattern="complement", load=0.3, seed=1),
            PLAN,
        )
    ]
    for time_skip in (True, False):
        engine = BatchEngine(runs, time_skip=time_skip)
        assert engine.telemetry is None
        engine.run_payload()
        tel = engine.telemetry
        assert tel is not None
        assert tel.injections > 0
        assert tel.dispatches > 0
        d = tel.to_dict()
        assert d["cycles_executed"] == tel.cycles_executed
        assert 0.0 <= d["skip_ratio"] <= 1.0
        if not time_skip:
            assert tel.cycles_skipped == 0


# ----------------------------------------------------------------------
# next_event_time unit behaviour
# ----------------------------------------------------------------------
def test_next_event_time_stops():
    import numpy as np

    from repro.core.skip import next_event_time

    ring = np.zeros(16, dtype=np.int64)
    inj = np.array([40], dtype=np.int64)
    common = dict(
        lockstep=False, window_cycles=1000, measure_end=500, chunk=100,
        pend_min=None, retry_pending=False,
    )

    # A dispatch that served while senders sit blocked forces t+1.
    t, ptr = next_event_time(10, 900, ring, inj, 0, **{
        **common, "retry_pending": True,
    })
    assert (t, ptr) == (11, 0)

    # An occupied ring slot at t+1 short-circuits to t+1.
    ring[11 % 16] = 1
    t, ptr = next_event_time(10, 900, ring, inj, 0, **common)
    assert t == 11
    ring[11 % 16] = 0

    # Otherwise: min over ring slots, injections, and the drain grid.
    ring[(10 + 5) % 16] = 2  # absolute cycle 15
    t, _ = next_event_time(10, 900, ring, inj, 0, **common)
    assert t == 15
    ring[:] = 0

    t, ptr = next_event_time(10, 900, ring, inj, 0, **common)
    assert (t, ptr) == (40, 0)  # next nonempty injection cycle

    t, _ = next_event_time(60, 900, ring, inj, 1, **common)
    assert t == 500  # measure_end is the first drain-check stop

    t, _ = next_event_time(520, 900, ring, inj, 1, **common)
    assert t == 600  # then every chunk on the drain grid

    # Lock-Step adds window boundaries and the earliest pending apply.
    t, _ = next_event_time(10, 900, ring, inj, 1, **{
        **common, "lockstep": True,
    })
    assert t == 500  # still the drain grid: boundary 1000 is later
    t, _ = next_event_time(10, 900, ring, inj, 1, **{
        **common, "lockstep": True, "pend_min": 123,
    })
    assert t == 123

    # The jump clamps to hard_end + 1 (loop termination).
    t, _ = next_event_time(880, 900, ring, np.array([], dtype=np.int64), 0,
                           **{**common, "measure_end": 100, "chunk": 10000})
    assert t == 901


def test_next_event_time_ring_wraparound():
    import numpy as np

    from repro.core.skip import next_event_time

    ring = np.zeros(16, dtype=np.int64)
    # Slot index below t % len: the occupied slot is *ahead* of t on the
    # wrapped ring, never behind it.
    ring[2] = 1  # with t=12, len=16 -> absolute cycle 18
    t, _ = next_event_time(
        12, 900, ring, np.array([], dtype=np.int64), 0,
        lockstep=False, window_cycles=1000, measure_end=800, chunk=100,
        pend_min=None, retry_pending=False,
    )
    assert t == 18
