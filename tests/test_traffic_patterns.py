"""Unit + property tests for traffic patterns."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traffic import (
    PATTERNS,
    UniformRandom,
    bit_reverse,
    butterfly,
    complement,
    make_pattern,
    neighbor,
    perfect_shuffle,
    tornado,
    transpose,
)


# ----------------------------------------------------------------------
# Paper definitions, checked bit-by-bit on 64 nodes (n = 6)
# ----------------------------------------------------------------------

def test_butterfly_swaps_msb_lsb():
    """a5..a1 a0 -> a0 a4..a1 a5"""
    p = butterfly(64)
    # 0b100000 (32) <-> 0b000001 (1)
    assert p.dest(0b100000) == 0b000001
    assert p.dest(0b000001) == 0b100000
    # Equal MSB/LSB are fixed points.
    assert p.dest(0b100001) == 0b100001
    assert p.dest(0b010110) == 0b010110


def test_complement_flips_all_bits():
    p = complement(64)
    assert p.dest(0) == 63
    assert p.dest(63) == 0
    assert p.dest(0b101010) == 0b010101
    # §4.2: "nodes 0,1,2..7 on board 0 communicates with node 63,62,..56".
    for node in range(8):
        assert p.dest(node) == 63 - node


def test_perfect_shuffle_rotates_left():
    """a5 a4..a0 -> a4..a0 a5"""
    p = perfect_shuffle(64)
    assert p.dest(0b100000) == 0b000001
    assert p.dest(0b000001) == 0b000010
    assert p.dest(0b110101) == 0b101011


def test_bit_reverse():
    p = bit_reverse(64)
    assert p.dest(0b100000) == 0b000001
    assert p.dest(0b110100) == 0b001011


def test_transpose():
    p = transpose(64)
    # a5a4a3 a2a1a0 -> a2a1a0 a5a4a3
    assert p.dest(0b111000) == 0b000111
    assert p.dest(0b101010) == 0b010101


def test_tornado_and_neighbor():
    t = tornado(64)
    assert t.dest(0) == 31
    assert t.dest(40) == (40 + 31) % 64
    n = neighbor(64)
    assert n.dest(63) == 0
    assert n.dest(5) == 6


@pytest.mark.parametrize("name", ["butterfly", "complement", "perfect_shuffle",
                                  "bit_reverse", "transpose"])
def test_permutations_are_bijective(name):
    p = make_pattern(name, 64)
    dests = [p.dest(s) for s in range(64)]
    assert sorted(dests) == list(range(64))


@given(st.sampled_from(["butterfly", "complement", "perfect_shuffle",
                        "bit_reverse", "tornado", "neighbor"]),
       st.sampled_from([4, 16, 64, 256]))
def test_permutation_matrix_is_doubly_stochastic(name, n):
    p = make_pattern(name, n)
    m = p.destination_matrix()
    assert np.allclose(m.sum(axis=0), 1.0)
    assert np.allclose(m.sum(axis=1), 1.0)


def test_permutations_require_power_of_two():
    for name in ("butterfly", "complement", "perfect_shuffle", "bit_reverse"):
        with pytest.raises(ConfigurationError):
            make_pattern(name, 48)


def test_transpose_requires_even_bits():
    with pytest.raises(ConfigurationError):
        transpose(32)  # 5 bits
    transpose(64)  # 6 bits: fine


def test_tornado_works_for_non_power_of_two():
    t = tornado(10)
    assert t.dest(0) == 4


# ----------------------------------------------------------------------
# Uniform
# ----------------------------------------------------------------------

def test_uniform_never_self():
    p = UniformRandom(16)
    rng = np.random.default_rng(0)
    for _ in range(500):
        src = int(rng.integers(0, 16))
        assert p.dest(src, rng) != src


def test_uniform_covers_all_destinations():
    p = UniformRandom(8)
    rng = np.random.default_rng(1)
    seen = {p.dest(3, rng) for _ in range(500)}
    assert seen == set(range(8)) - {3}


def test_uniform_matrix():
    m = UniformRandom(4).destination_matrix()
    assert np.allclose(np.diag(m), 0.0)
    assert np.allclose(m.sum(axis=1), 1.0)
    assert m[0, 1] == pytest.approx(1 / 3)


def test_uniform_needs_rng():
    with pytest.raises(ConfigurationError):
        UniformRandom(8).dest(0)


def test_uniform_distribution_is_flat():
    """Chi-square-ish sanity: all destinations within 3 sigma of the mean."""
    p = UniformRandom(8)
    rng = np.random.default_rng(42)
    n = 7000
    counts = np.zeros(8)
    for _ in range(n):
        counts[p.dest(0, rng)] += 1
    expected = n / 7
    sigma = np.sqrt(n * (1 / 7) * (6 / 7))
    assert counts[0] == 0
    assert np.all(np.abs(counts[1:] - expected) < 4 * sigma)


# ----------------------------------------------------------------------
# Registry / misc
# ----------------------------------------------------------------------

def test_registry_contains_paper_patterns():
    for name in ("uniform", "butterfly", "complement", "perfect_shuffle"):
        assert name in PATTERNS


def test_make_pattern_unknown():
    with pytest.raises(ConfigurationError):
        make_pattern("zipf", 64)


def test_src_range_checked():
    p = complement(16)
    with pytest.raises(ConfigurationError):
        p.dest(16)


def test_min_nodes():
    with pytest.raises(ConfigurationError):
        UniformRandom(1)


def test_mapping_property():
    p = complement(4)
    assert p.mapping == [3, 2, 1, 0]
    assert p.is_permutation
    assert not UniformRandom(4).is_permutation
