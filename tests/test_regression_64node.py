"""Regression pins for the 64-node evaluation platform.

These encode the reproduction's headline numbers (the paper-shape results
EXPERIMENTS.md reports) with loose tolerances, so a behavioural change in
any layer — kernel, optics, power, DPM/DBR — that shifts the story is
caught here rather than in a bench run.
"""

import pytest

from repro import ERapidSystem, MeasurementPlan, WorkloadSpec

PLAN = MeasurementPlan(warmup=8000, measure=10000, drain_limit=16000)


def run64(policy, pattern, load, seed=1):
    system = ERapidSystem.build(boards=8, nodes_per_board=8, policy=policy)
    return system.run(WorkloadSpec(pattern=pattern, load=load, seed=seed), PLAN)


@pytest.fixture(scope="module")
def complement_05():
    return {
        policy: run64(policy, "complement", 0.5)
        for policy in ("NP-NB", "P-NB", "NP-B", "P-B")
    }


def test_complement_static_saturation_value(complement_05):
    """Static complement saturates at mu_opt / D = 1/40.96/8 ~ 0.00305."""
    for policy in ("NP-NB", "P-NB"):
        assert complement_05[policy].throughput == pytest.approx(
            0.00305, rel=0.05
        )


def test_complement_reconfigured_delivers_offered(complement_05):
    """NP-B/P-B carry the full offered 0.5 N_c (~0.0119) — ~3.9x static."""
    for policy in ("NP-B", "P-B"):
        r = complement_05[policy]
        assert r.throughput == pytest.approx(0.0119, rel=0.08)
        assert r.throughput > 3.5 * complement_05["NP-NB"].throughput


def test_complement_power_multiples(complement_05):
    """Paper: NP-B ~4x the static power ('300 % more'); P-B cheaper than
    NP-B; NP-NB ~ P-NB (the saturated link runs at P_high either way)."""
    np_nb = complement_05["NP-NB"].power_mw
    p_nb = complement_05["P-NB"].power_mw
    np_b = complement_05["NP-B"].power_mw
    p_b = complement_05["P-B"].power_mw
    assert np_b / np_nb == pytest.approx(3.6, rel=0.25)
    assert p_nb == pytest.approx(np_nb, rel=0.2)
    assert p_b < 0.95 * np_b


def test_complement_reconfigured_latency_unsaturates(complement_05):
    assert complement_05["NP-B"].avg_latency < 500
    assert complement_05["NP-NB"].avg_latency > 5000


def test_uniform_pb_tradeoff():
    """Abstract: <5 % throughput cost, 25-50 % power saving (mid load)."""
    base = run64("NP-NB", "uniform", 0.5)
    pb = run64("P-B", "uniform", 0.5)
    assert pb.throughput >= 0.95 * base.throughput
    assert 0.5 <= pb.power_mw / base.power_mw <= 0.85


def test_uniform_low_load_deep_savings():
    """At 0.2 N_c every link rides P_low: >50 % saving for P policies."""
    base = run64("NP-NB", "uniform", 0.2)
    pnb = run64("P-NB", "uniform", 0.2)
    assert pnb.power_mw < 0.5 * base.power_mw
    assert pnb.throughput == pytest.approx(base.throughput, rel=0.02)


def test_butterfly_speedup_band():
    """Paper: ~25 % improvement class (we measure ~1.3-1.5x at 0.6 N_c)."""
    base = run64("NP-NB", "butterfly", 0.6)
    pb = run64("P-B", "butterfly", 0.6)
    ratio = pb.throughput / base.throughput
    assert 1.1 < ratio < 2.2


def test_shuffle_speedup_band():
    """Paper: ~1.7x improvement class."""
    base = run64("NP-NB", "perfect_shuffle", 0.6)
    pb = run64("P-B", "perfect_shuffle", 0.6)
    ratio = pb.throughput / base.throughput
    assert 1.4 < ratio < 2.6


def test_capacity_model_predicts_static_saturation():
    """The analytic channel-load bound matches the simulator's measured
    saturation for complement (purely remote traffic), and lower-bounds it
    for perfect shuffle, where boards 0 and 7 keep delivering their *local*
    half past optical saturation."""
    from repro import CapacityModel, ERapidTopology, make_pattern

    topo = ERapidTopology(boards=8, nodes_per_board=8)
    comp = CapacityModel(topo, make_pattern("complement", 64))
    measured = run64("NP-NB", "complement", 0.9).throughput
    assert measured == pytest.approx(comp.max_injection(), rel=0.15)

    shuffle = CapacityModel(topo, make_pattern("perfect_shuffle", 64))
    predicted = shuffle.max_injection()
    measured = run64("NP-NB", "perfect_shuffle", 0.9).throughput
    assert predicted < measured < 2.0 * predicted
