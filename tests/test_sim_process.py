"""Unit tests for generator-based processes and resources/stores."""

import pytest

from repro.errors import ProcessError, SimulationError
from repro.sim import Interrupt, MonitoredStore, Resource, Simulator, Store


def test_process_holds_via_timeout():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield sim.timeout(10)
        times.append(sim.now)
        yield sim.timeout(5)
        times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times == [0.0, 10.0, 15.0]


def test_process_receives_timeout_value():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1, value="hello")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_process_join_returns_value():
    sim = Simulator()
    got = []

    def child():
        yield sim.timeout(3)
        return 42

    def parent():
        result = yield sim.process(child())
        got.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert got == [(3.0, 42)]


def test_yield_non_waitable_raises():
    sim = Simulator()

    def bad():
        yield 17

    sim.process(bad())
    with pytest.raises(ProcessError):
        sim.run()


def test_process_needs_generator():
    sim = Simulator()
    with pytest.raises(ProcessError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    p = sim.process(victim())

    def attacker():
        yield sim.timeout(7)
        p.interrupt("preempt")

    sim.process(attacker())
    sim.run()
    assert log == [("interrupted", 7.0, "preempt")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    assert not p.alive
    with pytest.raises(ProcessError):
        p.interrupt()


def test_unhandled_interrupt_kills_process():
    sim = Simulator()

    def victim():
        yield sim.timeout(100)

    p = sim.process(victim())

    def attacker():
        yield sim.timeout(1)
        p.interrupt()

    sim.process(attacker())
    sim.run()
    assert not p.alive


def test_stale_wakeup_after_interrupt_ignored():
    """A process interrupted while blocked must not resume when the original
    waitable later fires."""
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(10)
            log.append("timeout-resumed")
        except Interrupt:
            yield sim.timeout(100)
            log.append("second-wait-done")

    p = sim.process(victim())

    def attacker():
        yield sim.timeout(5)
        p.interrupt()

    sim.process(attacker())
    sim.run()
    assert log == ["second-wait-done"]
    assert sim.now == 105.0


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------

def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(tag, hold):
        yield res.request()
        log.append((sim.now, tag, "in"))
        yield sim.timeout(hold)
        log.append((sim.now, tag, "out"))
        res.release()

    sim.process(worker("a", 10))
    sim.process(worker("b", 5))
    sim.run()
    assert log == [
        (0.0, "a", "in"),
        (10.0, "a", "out"),
        (10.0, "b", "in"),
        (15.0, "b", "out"),
    ]


def test_resource_capacity_two_admits_pair():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    entered = []

    def worker(tag):
        yield res.request()
        entered.append((sim.now, tag))
        yield sim.timeout(10)
        res.release()

    for tag in "abc":
        sim.process(worker(tag))
    sim.run()
    assert entered == [(0.0, "a"), (0.0, "b"), (10.0, "c")]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(8)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(8.0, "x")]


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a-in", sim.now))
        yield store.put("b")
        log.append(("b-in", sim.now))

    def consumer():
        yield sim.timeout(5)
        item = yield store.get()
        log.append(("got-" + item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("a-in", 0.0) in log
    assert ("b-in", 5.0) in log  # admitted only after the consumer drained


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put(1) is True
    assert store.try_put(2) is False
    ok, item = store.try_get()
    assert ok and item == 1
    ok, item = store.try_get()
    assert not ok and item is None


def test_store_bad_capacity():
    with pytest.raises(SimulationError):
        Store(Simulator(), capacity=0)


# ----------------------------------------------------------------------
# MonitoredStore
# ----------------------------------------------------------------------

def test_monitored_store_occupancy_average():
    sim = Simulator()
    store = MonitoredStore(sim, capacity=4)

    def scenario():
        yield store.put("a")       # occ 1 from t=0
        yield sim.timeout(10)
        yield store.put("b")       # occ 2 from t=10
        yield sim.timeout(10)
        yield store.get()          # occ 1 from t=20
        yield sim.timeout(10)      # until t=30

    sim.process(scenario())
    sim.run(until=30)
    # area = 1*10 + 2*10 + 1*10 = 40 over 30 -> 4/3
    assert store.occupancy.window(30.0) == pytest.approx(40.0 / 30.0)
    assert store.buffer_util(30.0) == pytest.approx(40.0 / 30.0 / 4)


def test_monitored_store_counts_and_dwell():
    sim = Simulator()
    store = MonitoredStore(sim, capacity=4)

    def scenario():
        yield store.put("a")
        yield sim.timeout(6)
        yield store.get()

    sim.process(scenario())
    sim.run()
    assert store.arrivals == 1
    assert store.departures == 1
    assert store.dwell.mean == pytest.approx(6.0)


def test_monitored_store_direct_handoff_counts():
    sim = Simulator()
    store = MonitoredStore(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    def producer():
        yield sim.timeout(3)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == ["x"]
    assert store.arrivals == 1 and store.departures == 1
    assert store.dwell.mean == 0.0


def test_monitored_store_window_reset():
    sim = Simulator()
    store = MonitoredStore(sim, capacity=2)

    def scenario():
        yield store.put("a")
        yield sim.timeout(10)
        store.reset_window()
        yield sim.timeout(10)

    sim.process(scenario())
    sim.run(until=20)
    # After reset at t=10, occupancy stays 1 for the whole window.
    assert store.buffer_util(20.0) == pytest.approx(0.5)
