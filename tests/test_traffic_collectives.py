"""Tests for the HPC collective/hotspot traffic patterns and the DPM
history-smoothing extension."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traffic import (
    AllToAllPersonalized,
    CyclingPattern,
    HaloExchange,
    HotspotPattern,
    RingAllreduce,
    WorkloadSpec,
    hotspot,
    make_pattern,
)
from repro.network.topology import ERapidTopology


# ----------------------------------------------------------------------
# Cycling patterns
# ----------------------------------------------------------------------

def test_all_to_all_linear_shift_schedule():
    p = AllToAllPersonalized(4)
    # Rank 0's rounds: 1, 2, 3, then wrap.
    assert [p.dest(0) for _ in range(4)] == [1, 2, 3, 1]
    # Rank 2's rounds: 3, 0, 1.
    assert [p.dest(2) for _ in range(3)] == [3, 0, 1]


def test_all_to_all_matrix_is_uniform_without_self():
    m = AllToAllPersonalized(8).destination_matrix()
    assert np.allclose(np.diag(m), 0.0)
    off_diag = m[~np.eye(8, dtype=bool)]
    assert np.allclose(off_diag, 1.0 / 7)


def test_ring_allreduce_alternates_neighbours():
    p = RingAllreduce(8)
    assert [p.dest(3) for _ in range(4)] == [4, 2, 4, 2]
    assert [p.dest(0) for _ in range(2)] == [1, 7]


def test_halo_exchange_grid_neighbours():
    p = HaloExchange(4, 4)
    assert p.n_nodes == 16
    # Node 5 (x=1, y=1): east 6, west 4, north 9, south 1.
    dests = {p.dest(5) for _ in range(4)}
    assert dests == {6, 4, 9, 1}


def test_halo_exchange_wraps_periodically():
    p = HaloExchange(4, 2)
    # Node 0 (x=0, y=0): east 1, west 3, and ±y fold to node 4.
    dests = [p.dest(0) for _ in range(3)]
    assert set(dests) == {1, 3, 4}


def test_halo_validation():
    with pytest.raises(ConfigurationError):
        HaloExchange(1, 4)


def test_cycling_pattern_validation():
    with pytest.raises(ConfigurationError):
        CyclingPattern(4, [[1]], "bad")  # wrong list count
    with pytest.raises(ConfigurationError):
        CyclingPattern(2, [[0], [0]], "bad")  # self-send
    with pytest.raises(ConfigurationError):
        CyclingPattern(2, [[], [0]], "bad")  # empty


@given(st.sampled_from([4, 8, 16]))
def test_cycling_matrices_row_stochastic(n):
    for pattern in (AllToAllPersonalized(n), RingAllreduce(n)):
        m = pattern.destination_matrix()
        assert np.allclose(m.sum(axis=1), 1.0)
        assert np.allclose(np.diag(m), 0.0)


# ----------------------------------------------------------------------
# Hotspot
# ----------------------------------------------------------------------

def test_hotspot_skews_toward_hot_node():
    p = HotspotPattern(16, hot_node=3, fraction=0.5)
    rng = np.random.default_rng(1)
    dests = [p.dest(0, rng) for _ in range(2000)]
    hot_share = dests.count(3) / len(dests)
    # 0.5 direct + 1/15 of the uniform remainder ~ 0.533.
    assert hot_share == pytest.approx(0.53, abs=0.05)


def test_hotspot_never_self():
    p = HotspotPattern(8, hot_node=0, fraction=0.9)
    rng = np.random.default_rng(2)
    assert all(p.dest(0, rng) != 0 for _ in range(200))


def test_hotspot_matrix_rows_sum_to_one():
    m = HotspotPattern(8, hot_node=2, fraction=0.3).destination_matrix()
    assert np.allclose(m.sum(axis=1), 1.0)
    assert np.allclose(np.diag(m), 0.0)
    assert m[0, 2] > m[0, 1]


def test_hotspot_validation():
    with pytest.raises(ConfigurationError):
        HotspotPattern(8, hot_node=8)
    with pytest.raises(ConfigurationError):
        HotspotPattern(8, fraction=1.5)
    with pytest.raises(ConfigurationError):
        HotspotPattern(8).dest(0)  # needs rng


def test_registry_entries():
    assert make_pattern("hotspot", 64).name == "hotspot"
    assert make_pattern("all_to_all", 64).name == "all_to_all"
    assert make_pattern("ring_allreduce", 64).name == "ring_allreduce"


def test_collectives_run_through_the_engine():
    """End-to-end: the registered collective patterns drive a full run."""
    from repro import ERapidSystem, MeasurementPlan

    plan = MeasurementPlan(warmup=3000, measure=4000, drain_limit=6000)
    for name in ("hotspot", "all_to_all", "ring_allreduce"):
        system = ERapidSystem.build(boards=4, nodes_per_board=4, policy="P-B")
        r = system.run(WorkloadSpec(pattern=name, load=0.3, seed=1), plan)
        assert r.throughput > 0, name
        assert r.labeled_delivered > 0, name


# ----------------------------------------------------------------------
# DPM smoothing
# ----------------------------------------------------------------------

def test_dpm_smoothing_validation():
    from dataclasses import replace
    from repro.core.policies import P_B

    with pytest.raises(ConfigurationError):
        replace(P_B, dpm_smoothing=1.0)
    with pytest.raises(ConfigurationError):
        replace(P_B, dpm_smoothing=-0.1)


def test_dpm_smoothing_reduces_power_or_transitions():
    """Smoothing must change behaviour measurably without breaking the run."""
    from dataclasses import replace
    from repro import ERapidSystem, MeasurementPlan
    from repro.core.policies import P_B

    plan = MeasurementPlan(warmup=6000, measure=8000, drain_limit=8000)
    wl = WorkloadSpec(pattern="uniform", load=0.5, seed=1)
    raw = ERapidSystem.build(boards=4, nodes_per_board=4, policy=P_B).run(wl, plan)
    smooth_policy = replace(P_B, name="P-B-ewma", dpm_smoothing=0.6)
    smooth = ERapidSystem.build(
        boards=4, nodes_per_board=4, policy=smooth_policy
    ).run(wl, plan)
    assert smooth.throughput == pytest.approx(raw.throughput, rel=0.05)
    assert smooth.power_mw != raw.power_mw


def test_smoothed_util_math():
    from repro.core import ERapidConfig, FastEngine
    from dataclasses import replace
    from repro.core.policies import P_B

    cfg = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4),
        policy=replace(P_B, dpm_smoothing=0.5),
    )
    engine = FastEngine(cfg, WorkloadSpec(load=0.0))
    ch = engine.channels[(1, 0)]
    assert ch.smoothed_util(0.8) == pytest.approx(0.8)  # first window
    assert ch.smoothed_util(0.0) == pytest.approx(0.4)
    assert ch.smoothed_util(0.0) == pytest.approx(0.2)


def test_unsmoothed_util_passthrough():
    from repro.core import ERapidConfig, FastEngine

    cfg = ERapidConfig(topology=ERapidTopology(boards=4, nodes_per_board=4))
    engine = FastEngine(cfg, WorkloadSpec(load=0.0))
    ch = engine.channels[(1, 0)]
    assert ch.smoothed_util(0.8) == 0.8
    assert ch.smoothed_util(0.1) == 0.1
