"""Callback FastEngine vs the frozen coroutine engine: bit-identity.

The hot-path rewrite (callback state machines, fused timed holds, batched
gap sampling, owner-indexed channel lookups) is only admissible because it
changes *nothing* observable: every :class:`RunResult` field except the
executed-event count must match the coroutine engine bit-for-bit.  These
are the CI-sized cells of the matrix; ``python -m repro.perf bench --only
engine`` runs the full panel and records the fingerprints.
"""

import pytest

from repro.core.config import ControlParams, ERapidConfig
from repro.core.engine import FastEngine
from repro.core.policies import make_policy
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.perf.legacy_engine import LegacyFastEngine
from repro.traffic.workload import WorkloadSpec

PLAN = MeasurementPlan(warmup=200.0, measure=600.0, drain_limit=1500.0)


def _comparable(engine_cls, pattern, policy, load, seed=1, failure=None):
    config = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4),
        policy=make_policy(policy),
        control=ControlParams(window_cycles=500),
        seed=seed,
    )
    engine = engine_cls(
        config, WorkloadSpec(pattern=pattern, load=load, seed=seed), PLAN
    )
    if failure is not None:
        engine.inject_laser_failure(*failure)
    d = engine.run().to_dict()
    # The one legitimate difference: how many kernel events the run took.
    d["extra"].pop("events")
    return d


@pytest.mark.parametrize("pattern,policy,load", [
    ("uniform", "NP-NB", 0.2),       # scalar gap path, static network
    ("uniform", "P-B", 0.5),         # scalar gap path, DPM + DBR
    ("complement", "P-B", 0.9),      # batched gap path, saturating pair load
    ("bit_reverse", "P-NB", 0.4),    # batched gap path, DPM only
    ("hotspot", "NP-B", 0.5),        # random dests, DBR-driven grants
])
def test_rewrite_is_bit_identical(pattern, policy, load):
    new = _comparable(FastEngine, pattern, policy, load)
    old = _comparable(LegacyFastEngine, pattern, policy, load)
    assert new == old


def test_rewrite_is_bit_identical_under_failure():
    """Laser failure exercises the blocked-sender readmit path (parked
    packets re-entering service from a DBR grant)."""
    failure = (3, 1, 300.0)
    new = _comparable(
        FastEngine, "complement", "P-B", 0.6, seed=3, failure=failure
    )
    old = _comparable(
        LegacyFastEngine, "complement", "P-B", 0.6, seed=3, failure=failure
    )
    assert new == old


def test_rewrite_event_count_differs():
    """Sanity that the comparison above is not vacuous: the callback
    engine really does execute fewer kernel events (fused timed holds),
    so ``events`` is excluded for a reason."""
    config = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4),
        policy=make_policy("P-B"),
        control=ControlParams(window_cycles=500),
        seed=1,
    )
    wl = WorkloadSpec(pattern="uniform", load=0.4, seed=1)
    new = FastEngine(config, wl, PLAN)
    new.run()
    old = LegacyFastEngine(config, wl, PLAN)
    old.run()
    assert new.sim.event_count < old.sim.event_count
