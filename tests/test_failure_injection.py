"""Failure injection: dead lasers/receivers and DBR-driven recovery."""

import pytest

from repro.core import ERapidConfig, ERapidSystem, FastEngine
from repro.core.policies import NP_B, NP_NB, P_B
from repro.errors import ConfigurationError, WavelengthError
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.optics import SuperHighway
from repro.sim.trace import TraceLog
from repro.traffic import WorkloadSpec

TOPO4 = ERapidTopology(boards=4, nodes_per_board=4)


# ----------------------------------------------------------------------
# SRS-level semantics
# ----------------------------------------------------------------------

def test_fail_channel_darkens_and_blocks_grants():
    srs = SuperHighway(TOPO4)
    w = srs.rwa.wavelength_for(1, 2)
    old = srs.fail_channel(2, w)
    assert old == 1
    assert srs.owner_of(2, w) is None
    assert srs.is_failed(2, w)
    assert not srs.tx_arrays[1][w].is_on(2)
    with pytest.raises(WavelengthError):
        srs.grant(2, w, 3)


def test_fail_dark_channel_returns_none():
    srs = SuperHighway(TOPO4)
    assert srs.fail_channel(2, 0) is None  # λ0 is dark by default


def test_repair_restores_grantability():
    srs = SuperHighway(TOPO4)
    w = srs.rwa.wavelength_for(1, 2)
    srs.fail_channel(2, w)
    srs.repair_channel(2, w)
    assert not srs.is_failed(2, w)
    srs.grant(2, w, 1)
    assert srs.owner_of(2, w) == 1


def test_reset_to_static_skips_failed():
    srs = SuperHighway(TOPO4)
    w = srs.rwa.wavelength_for(3, 0)
    srs.fail_channel(0, w)
    srs.reset_to_static()
    assert srs.owner_of(0, w) is None
    assert len(srs.all_channels()) == 11  # one of the 12 static stays dark


def test_failure_survives_validation():
    srs = SuperHighway(TOPO4)
    srs.fail_channel(2, srs.rwa.wavelength_for(1, 2))
    srs.validate()


# ----------------------------------------------------------------------
# Engine-level recovery
# ----------------------------------------------------------------------

PLAN = MeasurementPlan(warmup=10000, measure=8000, drain_limit=12000)


def run_with_failure(policy, fail_at=3000.0, pattern="complement", load=0.4):
    """Fail the hot pair (0 -> 3)'s static wavelength mid-run."""
    cfg = ERapidConfig(topology=TOPO4, policy=policy)
    trace = TraceLog()
    engine = FastEngine(
        cfg, WorkloadSpec(pattern=pattern, load=load, seed=7), PLAN, trace=trace
    )
    w_hot = engine.srs.rwa.wavelength_for(0, 3)
    engine.inject_laser_failure(3, w_hot, at=fail_at)
    result = engine.run()
    return engine, result


def test_dbr_routes_around_failed_laser():
    """With DBR, traffic on the failed pair recovers onto another λ."""
    engine, result = run_with_failure(NP_B)
    w_hot = engine.srs.rwa.wavelength_for(0, 3)
    assert engine.srs.is_failed(3, w_hot)
    # Board 0 owns at least one *other* wavelength toward board 3.
    chans = engine.srs.channels_from(0, 3)
    assert chans and all(c.wavelength != w_hot for c in chans)
    # And traffic flows: the measurement window sees healthy delivery.
    assert result.acceptance > 0.9


def test_static_network_cannot_recover():
    """NP-NB has no reconfiguration: the pair stays dead and its labeled
    packets never arrive."""
    engine, result = run_with_failure(NP_NB)
    assert engine.srs.channels_from(0, 3) == []
    assert result.acceptance < 0.9
    # The other complement pairs keep working, so some traffic flows.
    assert result.throughput > 0


def test_p_b_recovery_and_power_sanity():
    engine, result = run_with_failure(P_B)
    assert result.acceptance > 0.85
    live = engine.srs.validate()
    keys = [(c.wavelength, c.dst) for c in live]
    assert len(keys) == len(set(keys))


def test_failure_in_past_rejected():
    cfg = ERapidConfig(topology=TOPO4, policy=NP_B)
    engine = FastEngine(cfg, WorkloadSpec(load=0.1), PLAN)
    engine.start()
    engine.sim.run(until=100)
    with pytest.raises(ConfigurationError):
        engine.inject_laser_failure(0, 1, at=50.0)


def test_multiple_failures_still_converge():
    """Fail two of the hot pair's usable wavelengths; DBR finds a third."""
    cfg = ERapidConfig(topology=TOPO4, policy=NP_B)
    engine = FastEngine(
        cfg, WorkloadSpec(pattern="complement", load=0.3, seed=7), PLAN
    )
    w_hot = engine.srs.rwa.wavelength_for(0, 3)
    engine.inject_laser_failure(3, w_hot, at=2500.0)
    engine.inject_laser_failure(3, (w_hot % 3) + 1 if (w_hot % 3) + 1 != w_hot else 2,
                                at=2500.0)
    result = engine.run()
    assert result.acceptance > 0.85
    assert len(engine.srs.failed) == 2


def test_undrained_run_stops_at_hard_end():
    """When labeled packets can never land (static network, dead pair),
    the drain loop must give up exactly at ``plan.hard_end`` with
    ``Collector.drained()`` still false — not hang, not stop early."""
    plan = MeasurementPlan(warmup=2000, measure=3000, drain_limit=4000)
    cfg = ERapidConfig(topology=TOPO4, policy=NP_NB)
    engine = FastEngine(
        cfg, WorkloadSpec(pattern="complement", load=0.4, seed=7), plan
    )
    # Kill pair (0 -> 3) before measurement starts: every labeled packet
    # node 0..3 injects toward board 3 is stuck in a queue forever.
    w_hot = engine.srs.rwa.wavelength_for(0, 3)
    engine.inject_laser_failure(3, w_hot, at=500.0)
    result = engine.run()
    assert not engine.collector.drained()
    assert engine.collector.labeled_outstanding > 0
    assert engine.sim.now == plan.hard_end
    # The stuck packets are visible as the injected/delivered gap.
    assert result.labeled_delivered < result.labeled_injected
    # The run still produces the standard metric set, nothing extra.
    assert set(result.extra) == {
        "policy", "pattern", "load", "grants", "dpm_transitions",
        "sleeps", "lasers_on_final", "events",
    }


def test_drained_run_stops_before_hard_end():
    """The healthy counterpart: with all channels alive the drain loop
    exits as soon as the labeled population lands, well short of the cap.
    Load 0.2 keeps static complement comfortably below saturation."""
    plan = MeasurementPlan(warmup=2000, measure=3000, drain_limit=4000)
    cfg = ERapidConfig(topology=TOPO4, policy=NP_NB)
    engine = FastEngine(
        cfg, WorkloadSpec(pattern="complement", load=0.2, seed=7), plan
    )
    result = engine.run()
    assert engine.collector.drained()
    assert engine.sim.now < plan.hard_end
    assert result.labeled_delivered == result.labeled_injected


def test_failure_trace_recorded():
    engine, _ = run_with_failure(NP_B)
    recs = list(engine.trace.filter(category="failure"))
    assert len(recs) == 1
    assert recs[0].fields["lost_owner"] == 0
