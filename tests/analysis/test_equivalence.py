"""Equivalence-harness self-tests: the gate must actually gate.

Each declared tolerance is perturbed past its limit on synthetic results
(a "toy engine" pair) and the report must fail; the unperturbed pair must
pass.  A harness whose failure modes aren't pinned is a rubber stamp.
"""

import dataclasses

import pytest

from repro.analysis.equivalence import (
    DEFAULT_TOLERANCES,
    EquivalenceReport,
    MetricDeviation,
    ToleranceSpec,
    bit_identity_fingerprint,
    compare_runs,
)
from repro.metrics.collector import RunResult


def result(**overrides):
    fields = dict(
        throughput=0.02,
        offered=0.021,
        avg_latency=140.0,
        p99_latency=300.0,
        max_latency=500.0,
        power_mw=180.0,
        labeled_injected=100,
        labeled_delivered=100,
        delivered_measure=640,
        extra={},
    )
    fields.update(overrides)
    return RunResult(**fields)


def perturbed(reference, metric, tolerance):
    """A copy of ``reference`` pushed just past ``tolerance`` on ``metric``."""
    value = float(getattr(reference, metric))
    bump = 1.01 * tolerance.limit(value)
    return dataclasses.replace(reference, **{metric: value + bump})


TOLERANCES_BY_METRIC = {t.metric: t for t in DEFAULT_TOLERANCES}


def test_identical_toy_runs_pass():
    runs = [result(), result(throughput=0.04, power_mw=90.0)]
    report = compare_runs(runs, [dataclasses.replace(r) for r in runs])
    assert report.ok
    assert report.total == 2
    for tol in DEFAULT_TOLERANCES:
        assert report.checked[tol.metric] == 2
        assert report.worst[tol.metric].deviation == 0.0


@pytest.mark.parametrize("metric", sorted(TOLERANCES_BY_METRIC))
def test_each_tolerance_trips_when_perturbed_past_it(metric):
    tol = TOLERANCES_BY_METRIC[metric]
    reference = [result()]
    candidate = [perturbed(reference[0], metric, tol)]
    report = compare_runs(reference, candidate)
    assert not report.ok
    assert [f.metric for f in report.failures] == [metric]
    assert report.failures[0].index == 0


@pytest.mark.parametrize("metric", sorted(TOLERANCES_BY_METRIC))
def test_each_tolerance_admits_deviation_inside_the_band(metric):
    tol = TOLERANCES_BY_METRIC[metric]
    reference = result()
    value = float(getattr(reference, metric))
    candidate = dataclasses.replace(
        reference, **{metric: value + 0.9 * tol.limit(value)}
    )
    assert compare_runs([reference], [candidate]).ok


def test_latency_is_checked_only_on_drained_references():
    tol = TOLERANCES_BY_METRIC["avg_latency"]
    assert tol.drained_only
    saturated = result(labeled_injected=100, labeled_delivered=60)
    candidate = perturbed(saturated, "avg_latency", tol)
    report = compare_runs([saturated], [candidate])
    assert report.ok
    assert report.checked["avg_latency"] == 0
    # Throughput and power are still checked on the same pair.
    assert report.checked["throughput"] == 1


def test_every_unchecked_run_carries_an_exclusion_reason():
    """No silent blind spots: for every declared metric, checked pairs
    plus recorded exclusions must account for every run, and each
    exclusion must say why its run was skipped."""
    runs = [
        result(),  # drained: checked everywhere
        result(labeled_injected=100, labeled_delivered=60),  # undrained
        result(labeled_injected=0, labeled_delivered=0),  # nothing labeled
    ]
    report = compare_runs(runs, [dataclasses.replace(r) for r in runs])
    assert report.ok
    by_metric = {}
    for exc in report.excluded:
        by_metric.setdefault(exc.metric, []).append(exc)
    for tol in DEFAULT_TOLERANCES:
        n_excluded = len(by_metric.get(tol.metric, []))
        assert report.checked[tol.metric] + n_excluded == report.total
        if not tol.drained_only:
            assert n_excluded == 0
    latency = by_metric["avg_latency"]
    assert [e.index for e in latency] == [1, 2]
    assert "undrained at drain_limit" in latency[0].reason
    assert "60/100" in latency[0].reason
    assert "no labeled packets" in latency[1].reason


def test_exclusions_serialize_for_bench_reports():
    saturated = result(labeled_injected=100, labeled_delivered=60)
    report = compare_runs([saturated], [dataclasses.replace(saturated)])
    data = report.to_dict()
    assert data["excluded"] == [
        {
            "metric": "avg_latency",
            "index": 0,
            "reason": (
                "reference undrained at drain_limit "
                "(60/100 labeled packets delivered)"
            ),
        }
    ]


def test_length_mismatch_is_an_error():
    with pytest.raises(ValueError):
        compare_runs([result()], [])


def test_worst_tracks_the_largest_relative_exceedance():
    tol = (ToleranceSpec("throughput", rel_tol=0.0, abs_tol=0.01),)
    reference = [result(throughput=0.5), result(throughput=0.5)]
    candidate = [
        result(throughput=0.502),  # 0.2x of the limit
        result(throughput=0.508),  # 0.8x of the limit
    ]
    report = compare_runs(reference, candidate, tolerances=tol)
    assert report.ok
    assert report.worst["throughput"].index == 1


def test_report_serializes_for_bench_reports():
    tol = TOLERANCES_BY_METRIC["power_mw"]
    reference = [result()]
    report = compare_runs(reference, [perturbed(reference[0], "power_mw", tol)])
    data = report.to_dict()
    assert data["ok"] is False
    assert data["total"] == 1
    assert data["failures"][0]["metric"] == "power_mw"
    assert isinstance(report, EquivalenceReport)
    assert all(isinstance(f, MetricDeviation) for f in report.failures)


def test_bit_identity_fingerprint_is_an_equality_witness():
    runs = [result(offered=0.25, labeled_injected=640)]
    same = [result(offered=0.25, labeled_injected=640)]
    assert bit_identity_fingerprint(runs) == bit_identity_fingerprint(same)
    # One ULP of drift on a fingerprinted field changes the digest.
    drifted = [
        result(
            offered=float.fromhex("0x1.0000000000001p-2"),
            labeled_injected=640,
        )
    ]
    assert bit_identity_fingerprint(runs) != bit_identity_fingerprint(drifted)
    # Non-fingerprinted fields don't participate.
    noisy = [result(offered=0.25, labeled_injected=640, power_mw=1.0)]
    assert bit_identity_fingerprint(runs) == bit_identity_fingerprint(noisy)
