"""Linter tests: exact rule codes and line numbers per fixture.

The on-disk fixtures under ``tests/analysis/fixtures/`` carry a
``# sim-lint: module=...`` marker so the scoped rules (SIM001/2/4/6) fire
outside the package tree; inline snippets pass ``module=`` directly.
"""

from pathlib import Path

import pytest

from repro.analysis.linter import lint_paths, lint_source, module_name_for_path
from repro.analysis.rules import RULES, rule_for

FIXTURES = Path(__file__).parent / "fixtures"


def codes_and_lines(findings):
    return [(f.code, f.line) for f in findings]


def lint_fixture(name):
    return lint_paths([FIXTURES / name], include_fixtures=True)


# ----------------------------------------------------------------------
# Per-rule fixtures: exact codes and line numbers
# ----------------------------------------------------------------------

def test_sim001_wallclock_fixture():
    findings = lint_fixture("bad_sim001_wallclock.py")
    assert codes_and_lines(findings) == [
        ("SIM001", 4),   # from time import perf_counter
        ("SIM001", 8),   # time.time()
        ("SIM001", 12),  # time.monotonic()
        ("SIM001", 12),  # perf_counter() via the from-import alias
    ]


def test_sim002_randomness_fixture():
    findings = lint_fixture("bad_sim002_randomness.py")
    assert codes_and_lines(findings) == [
        ("SIM002", 3),   # import random
        ("SIM002", 8),   # random.random()
        ("SIM002", 12),  # np.random.default_rng()
        ("SIM002", 16),  # np.random.uniform(...)
    ]


def test_sim003_mutable_default_fixture():
    findings = lint_fixture("bad_sim003_mutable_default.py")
    assert codes_and_lines(findings) == [
        ("SIM003", 4),   # values=[]
        ("SIM003", 9),   # table={}
        ("SIM003", 9),   # seen=set()
    ]


def test_sim004_float_eq_fixture():
    findings = lint_fixture("bad_sim004_float_eq.py")
    assert codes_and_lines(findings) == [
        ("SIM004", 6),   # sim.now == boundary
        ("SIM004", 10),  # delivered_at != ...
    ]


def test_sim005_reentry_fixture():
    findings = lint_fixture("bad_sim005_reentry.py")
    assert codes_and_lines(findings) == [
        ("SIM005", 6),   # sim.run() inside a process generator
        ("SIM005", 11),  # sim.run() inside a callback closure
    ]


def test_sim006_no_slots_fixture():
    findings = lint_fixture("bad_sim006_no_slots.py")
    assert codes_and_lines(findings) == [
        ("SIM006", 7),   # class Credit (bare @dataclass)
        ("SIM006", 13),  # class Stamp (@dataclass(frozen=True), no slots)
    ]


def test_sim006_plain_class_fixture():
    findings = lint_fixture("bad_sim006_plain_class.py")
    assert codes_and_lines(findings) == [
        ("SIM006", 7),   # class Arbiter: plain class, no __slots__
        ("SIM006", 23),  # class BareChild(Slotted): inherits but doesn't re-slot
    ]


def test_good_fixture_is_clean():
    assert lint_fixture("good_sim.py") == []


def test_fixtures_dir_skipped_without_flag():
    assert lint_paths([FIXTURES]) == []
    assert lint_paths([FIXTURES], include_fixtures=True) != []


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------

def test_sim001_only_fires_in_simulation_core():
    snippet = "import time\n\ndef f():\n    return time.time()\n"
    assert lint_source(snippet, module="repro.experiments.runner") == []
    hits = lint_source(snippet, module="repro.sim.kernel")
    assert codes_and_lines(hits) == [("SIM001", 4)]


def test_sim006_only_fires_in_hot_paths():
    snippet = (
        "from dataclasses import dataclass\n\n"
        "@dataclass\nclass Row:\n    x: int\n"
    )
    assert lint_source(snippet, module="repro.metrics.report") == []
    hits = lint_source(snippet, module="repro.network.credit")
    assert codes_and_lines(hits) == [("SIM006", 4)]


def test_sim006_plain_class_only_fires_in_network_substrate():
    snippet = "class Counter:\n    def __init__(self):\n        self.n = 0\n"
    # repro.core is a hot path for *dataclasses* but keeps open plain classes.
    assert lint_source(snippet, module="repro.core.dpm") == []
    assert lint_source(snippet, module="repro.metrics.report") == []
    hits = lint_source(snippet, module="repro.network.arbiters")
    assert codes_and_lines(hits) == [("SIM006", 1)]


def test_sim006_plain_class_exempts_open_layout_bases():
    snippet = (
        "from enum import Enum\n"
        "from typing import Generic, Protocol, TypeVar\n\n"
        "T = TypeVar('T')\n\n\n"
        "class Sinkish(Protocol):\n"
        "    def receive_flit(self, flit, port): ...\n\n\n"
        "class Mode(Enum):\n"
        "    ON = 1\n\n\n"
        "class Box(Generic[T]):\n"
        "    def __init__(self, item):\n"
        "        self.item = item\n\n\n"
        "class Oops(Exception):\n"
        "    pass\n"
    )
    assert lint_source(snippet, module="repro.network.interface") == []


def test_unscoped_file_gets_only_universal_rules():
    snippet = (
        "import time\n\n"
        "def f(xs=[]):\n"
        "    return time.time(), xs\n"
    )
    hits = lint_source(snippet)  # no module: SIM001 inactive, SIM003 active
    assert codes_and_lines(hits) == [("SIM003", 3)]


def test_module_name_derived_from_path():
    assert (
        module_name_for_path(Path("src/repro/sim/kernel.py")) == "repro.sim.kernel"
    )
    assert module_name_for_path(Path("src/repro/optics/__init__.py")) == "repro.optics"
    assert module_name_for_path(Path("tests/test_foo.py")) is None


# ----------------------------------------------------------------------
# Suppressions, allowances, registry
# ----------------------------------------------------------------------

def test_suppression_comment_silences_one_line():
    snippet = (
        "def f(sim, t):\n"
        "    return sim.now == t  # sim-lint: ignore[SIM004]\n"
    )
    assert lint_source(snippet, module="repro.sim.x") == []


def test_suppression_with_wrong_code_does_not_silence():
    snippet = (
        "def f(sim, t):\n"
        "    return sim.now == t  # sim-lint: ignore[SIM001]\n"
    )
    assert codes_and_lines(lint_source(snippet, module="repro.sim.x")) == [
        ("SIM004", 2)
    ]


def test_rng_machinery_construction_allowed():
    snippet = (
        "import numpy as np\n\n"
        "def make(seed):\n"
        "    seq = np.random.SeedSequence(seed, spawn_key=(1,))\n"
        "    return np.random.Generator(np.random.PCG64(seq))\n"
    )
    assert lint_source(snippet, module="repro.sim.rng") == []


def test_pytest_approx_comparisons_allowed():
    snippet = (
        "import pytest\n\n"
        "def check(sim):\n"
        "    assert sim.now == pytest.approx(10.0)\n"
    )
    assert lint_source(snippet, module="repro.sim.x") == []


def test_every_rule_has_code_title_and_hint():
    for rule in RULES:
        assert rule.code.startswith("SIM") and len(rule.code) == 6
        assert rule.title and rule.rationale and rule.hint
        assert rule_for(rule.code) is rule


def test_shipped_tree_is_lint_clean():
    """The satellite promise: the real src/ tree has zero findings."""
    repo_root = Path(__file__).resolve().parents[2]
    assert lint_paths([repo_root / "src"]) == []


# ----------------------------------------------------------------------
# PR 6 rules: SIM007–SIM011
# ----------------------------------------------------------------------

def test_sim007_unordered_iter_fixture():
    findings = lint_fixture("bad_sim007_unordered_iter.py")
    assert codes_and_lines(findings) == [
        ("SIM007", 6),   # for ch in channels.values()
        ("SIM007", 11),  # listcomp over queues.keys()
        ("SIM007", 15),  # listcomp over set(nodes)
        ("SIM007", 20),  # for b in frozenset(boards)
        ("SIM007", 27),  # for w in {0, 1, 2} set literal
    ]


def test_sim007_only_fires_in_engine_packages():
    snippet = "def f(d):\n    return [d[k] for k in d.keys()]\n"
    assert codes_and_lines(
        lint_source(snippet, module="repro.network.x")
    ) == [("SIM007", 2)]
    # Harness layers iterate however they like.
    assert lint_source(snippet, module="repro.experiments.x") == []
    assert lint_source(snippet, module="repro.cli") == []


def test_sim007_sorted_wrapper_is_sanctioned():
    snippet = "def f(s):\n    return [x for x in sorted(s)]\n"
    assert lint_source(snippet, module="repro.sim.x") == []


def test_sim008_rng_machinery_fixture():
    findings = lint_fixture("bad_sim008_rng_machinery.py")
    assert codes_and_lines(findings) == [
        ("SIM008", 4),   # from numpy.random import SeedSequence
        ("SIM008", 8),   # np.random.SeedSequence(...)
        ("SIM008", 9),   # np.random.Generator(...)
        ("SIM008", 9),   # np.random.PCG64(...)
        ("SIM008", 13),  # bare Random()
    ]


def test_sim008_exempt_inside_the_registry_module():
    snippet = (
        "import numpy as np\n\n"
        "def make(seed):\n"
        "    return np.random.Generator(np.random.PCG64(seed))\n"
    )
    assert lint_source(snippet, module="repro.sim.rng") == []
    assert codes_and_lines(lint_source(snippet, module="repro.traffic.x")) == [
        ("SIM008", 4),
        ("SIM008", 4),
    ]


def test_sim008_vectorized_draw_fixture():
    findings = lint_fixture("bad_sim008_vectorized_draw.py")
    assert codes_and_lines(findings) == [
        ("SIM008", 6),   # rng.geometric(p, size=n)
        ("SIM008", 10),  # stream.integers(0, hi, size=n)
        ("SIM008", 14),  # self._rng.exponential(2.0, size=n)
    ]


def test_sim008_vectorized_draw_scope_is_the_engine_tier():
    snippet = "def f(rng, n):\n    return rng.integers(0, 4, size=n)\n"
    # Engine packages and the batch slab orchestrator are in scope ...
    for module in ("repro.core.batch", "repro.sim.x", "repro.perf.executor"):
        assert codes_and_lines(lint_source(snippet, module=module)) == [
            ("SIM008", 2)
        ], module
    # ... the registry itself and harness layers are not.
    for module in ("repro.sim.rng", "repro.perf.bench", "repro.traffic.x",
                   "repro.experiments.x"):
        assert lint_source(snippet, module=module) == [], module


def test_sim007_covers_the_batch_slab_orchestrator():
    snippet = "def f(d):\n    return [d[k] for k in d.keys()]\n"
    assert codes_and_lines(
        lint_source(snippet, module="repro.perf.executor")
    ) == [("SIM007", 2)]
    # Other perf modules stay harness-scoped.
    assert lint_source(snippet, module="repro.perf.cache") == []


def test_sim009_env_read_fixture():
    findings = lint_fixture("bad_sim009_env_read.py")
    assert codes_and_lines(findings) == [
        ("SIM009", 5),   # from os import environ
        ("SIM009", 9),   # os.environ["..."]
        ("SIM009", 13),  # os.urandom(8)
        ("SIM009", 17),  # os.getenv("...")
        ("SIM009", 23),  # time.time() outside the SIM001 core
    ]


def test_sim009_cli_and_benchmarks_are_exempt():
    snippet = "import os\n\ndef f():\n    return os.environ.get('HOME')\n"
    assert codes_and_lines(lint_source(snippet, module="repro.power.x")) == [
        ("SIM009", 4)
    ]
    assert lint_source(snippet, module="repro.cli") == []
    assert lint_source(snippet, module="repro.experiments.sweep") == []


def test_sim009_service_layer_is_exempt():
    # A long-running server legitimately reads the host environment
    # (spool paths, artifact dirs) and the wall clock (audit stamps);
    # determinism lives below it, in the runs it schedules.
    snippet = (
        "import os, time\n\n"
        "def f():\n"
        "    return os.environ.get('ERAPID_ARTIFACT_DIR'), time.time()\n"
    )
    assert lint_source(snippet, module="repro.service.artifacts") == []
    assert lint_source(snippet, module="repro.service.audit") == []


def test_sim010_zero_delay_fixture():
    findings = lint_fixture("bad_sim010_zero_delay.py")
    assert codes_and_lines(findings) == [
        ("SIM010", 6),   # sim.schedule(0.0, ...)
        ("SIM010", 10),  # sim.schedule_fast(0, ...)
    ]


def test_sim010_kernel_itself_is_exempt():
    # The kernel's own zero-delay wakeup machinery is the implementation
    # of schedule_late — the rule binds engine code, not repro.sim.
    snippet = "def f(sim, cb):\n    sim.schedule(0.0, cb)\n"
    assert lint_source(snippet, module="repro.sim.process") == []
    assert codes_and_lines(lint_source(snippet, module="repro.core.x")) == [
        ("SIM010", 2)
    ]


def test_sim011_cycle_float_fixture():
    findings = lint_fixture("bad_sim011_cycle_float.py")
    assert codes_and_lines(findings) == [
        ("SIM011", 6),   # cycle / 2
        ("SIM011", 10),  # now + 0.5
        ("SIM011", 14),  # next_due -= 0.25
    ]


def test_sim011_only_fires_in_the_cycle_engine():
    snippet = "def f(now):\n    return now + 0.5\n"
    assert codes_and_lines(
        lint_source(snippet, module="repro.sim.cycle.kernel")
    ) == [("SIM011", 2)]
    assert lint_source(snippet, module="repro.sim.kernel") == []


def test_good_fixture_passes_all_eleven_rules():
    assert lint_fixture("good_sim.py") == []
