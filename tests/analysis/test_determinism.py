"""Determinism auditor tests.

Covers the three promises of the auditor: the real engine fingerprints
identically run-over-run, an intentionally nondeterministic toy kernel is
flagged, and fingerprint comparison pinpoints the first divergence.
"""

from repro.analysis.determinism import (
    AuditReport,
    audit,
    check_repeatable,
    compare_fingerprints,
    fingerprint_parts,
    simulate_detailed_fingerprint,
    simulate_fingerprint,
)


def test_fingerprint_is_pure_function_of_parts():
    a = fingerprint_parts(["e1", "e2"], {"latency": 1.5, "power": 0.25})
    b = fingerprint_parts(["e1", "e2"], {"power": 0.25, "latency": 1.5})
    assert a.digest == b.digest  # metric insertion order must not matter
    c = fingerprint_parts(["e1", "e3"], {"latency": 1.5, "power": 0.25})
    assert a.digest != c.digest


def test_compare_fingerprints_reports_first_divergence():
    a = fingerprint_parts(["e1", "e2"], {"latency": 1.5})
    b = fingerprint_parts(["e1", "e9"], {"latency": 1.5})
    diff = compare_fingerprints(a, b)
    assert diff is not None
    assert "trace line 1" in diff and "e2" in diff and "e9" in diff

    c = fingerprint_parts(["e1", "e2"], {"latency": 1.5})
    d = fingerprint_parts(["e1", "e2"], {"latency": 2.5})
    diff = compare_fingerprints(c, d)
    assert diff is not None and "latency" in diff

    assert compare_fingerprints(a, a) is None


def test_real_engine_same_seed_same_fingerprint():
    f1 = simulate_fingerprint(seed=7, boards=2, nodes_per_board=2)
    f2 = simulate_fingerprint(seed=7, boards=2, nodes_per_board=2)
    assert f1.digest == f2.digest
    assert f1.metrics == f2.metrics


def test_real_engine_different_seed_different_fingerprint():
    f1 = simulate_fingerprint(seed=7, boards=2, nodes_per_board=2)
    f2 = simulate_fingerprint(seed=8, boards=2, nodes_per_board=2)
    assert f1.digest != f2.digest


def test_permuted_insertion_order_is_repeatable():
    f1 = simulate_fingerprint(seed=7, boards=2, nodes_per_board=2, permuted=True)
    f2 = simulate_fingerprint(seed=7, boards=2, nodes_per_board=2, permuted=True)
    assert f1.digest == f2.digest


def test_audit_passes_on_both_engines():
    report = audit(seed=3, boards=2, nodes_per_board=2)
    assert report.ok
    assert len(report.checks) == 4
    assert all(c.ok for c in report.checks)
    payload = report.to_json()
    assert payload["ok"] is True
    names = {c["name"] for c in payload["checks"]}
    assert names == {
        "fast engine: same-seed repeatability (default event-insertion order)",
        "fast engine: same-seed repeatability (permuted event-insertion order)",
        "detailed engine: same-seed repeatability "
        "(default process-registration order)",
        "detailed engine: same-seed repeatability "
        "(permuted process-registration order)",
    }
    assert "deterministic" in report.format()


def test_audit_fast_only_skips_the_detailed_engine():
    report = audit(seed=3, boards=2, nodes_per_board=2, include_detailed=False)
    assert report.ok
    assert len(report.checks) == 2
    assert all(c.name.startswith("fast engine:") for c in report.checks)


def test_detailed_engine_same_seed_same_fingerprint():
    f1 = simulate_detailed_fingerprint(seed=11)
    f2 = simulate_detailed_fingerprint(seed=11)
    assert f1.digest == f2.digest
    assert f1.metric_dict["labeled_delivered"] != "0"


def test_detailed_engine_permuted_order_matches_default():
    # The detailed engine is a pure function of the kernel's total event
    # order, so shuffling process registration must not move a single flit.
    default = simulate_detailed_fingerprint(seed=11)
    permuted = simulate_detailed_fingerprint(seed=11, permuted=True)
    assert default.digest == permuted.digest


def test_detailed_engine_different_seed_different_fingerprint():
    f1 = simulate_detailed_fingerprint(seed=11)
    f2 = simulate_detailed_fingerprint(seed=12)
    assert f1.digest != f2.digest


class _BrokenKernel:
    """Toy kernel whose event order leaks incidental interpreter state.

    Iterating a set of strings is the classic accidental-nondeterminism
    bug: the order depends on interpreter state, not the seed.  We model
    it deterministically-per-call with a class counter so the test does
    not itself depend on hash randomization.
    """

    calls = 0

    def run(self):
        type(self).calls += 1
        events = [f"ev{i}" for i in range(4)]
        if type(self).calls % 2 == 0:  # order flips on every other run
            events.reverse()
        return events


def test_nondeterministic_toy_kernel_is_flagged():
    def make_fingerprint():
        lines = _BrokenKernel().run()
        return fingerprint_parts(lines, {"events": float(len(lines))})

    check = check_repeatable("broken toy kernel", make_fingerprint, runs=2)
    assert not check.ok
    assert "run 0 vs run 1" in check.detail
    assert "trace line 0" in check.detail

    report = AuditReport(checks=(check,))
    assert not report.ok
    assert "FAIL" in report.format()
    assert "NONDETERMINISM DETECTED" in report.format()


def test_deterministic_toy_kernel_passes():
    def make_fingerprint():
        return fingerprint_parts(["a", "b"], {"n": 2.0})

    check = check_repeatable("ok toy kernel", make_fingerprint, runs=3)
    assert check.ok
    assert "bit-identical" in check.detail
