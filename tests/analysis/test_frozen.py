"""Frozen-legacy integrity manifest tests.

The acceptance criterion this file pins: mutating a frozen
``legacy_*.py`` oracle makes the ``frozen`` gate fail, and the tracked
``analysis-frozen.json`` matches the shipped tree bit-for-bit.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.frozen import (
    FROZEN_FILES,
    compute_manifest,
    file_digest,
    load_manifest,
    verify_manifest,
    write_manifest,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_tree(tmp_path):
    """Copy the real frozen oracles into a scratch repo root."""
    for rel in FROZEN_FILES:
        dst = tmp_path / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, dst)
    return tmp_path


# ----------------------------------------------------------------------
# Manifest mechanics
# ----------------------------------------------------------------------

def test_round_trip_verifies_clean(tmp_path):
    root = make_tree(tmp_path)
    manifest = root / "analysis-frozen.json"
    write_manifest(root, manifest)
    assert verify_manifest(root, manifest) == []


def test_digest_is_content_addressed(tmp_path):
    p = tmp_path / "f.py"
    p.write_text("x = 1\n")
    d1 = file_digest(p)
    assert d1.startswith("sha256:")
    p.write_text("x = 2\n")
    assert file_digest(p) != d1


def test_mutated_oracle_is_a_hash_mismatch(tmp_path):
    root = make_tree(tmp_path)
    manifest = root / "analysis-frozen.json"
    write_manifest(root, manifest)
    victim = root / FROZEN_FILES[1]  # legacy_engine.py
    victim.write_text(victim.read_text() + "\n# drive-by edit\n")
    mismatches = verify_manifest(root, manifest)
    assert [(m.path, m.kind) for m in mismatches] == [
        (FROZEN_FILES[1], "hash-mismatch")
    ]


def test_deleted_oracle_is_a_missing_file(tmp_path):
    root = make_tree(tmp_path)
    manifest = root / "analysis-frozen.json"
    write_manifest(root, manifest)
    (root / FROZEN_FILES[0]).unlink()
    mismatches = verify_manifest(root, manifest)
    assert [(m.path, m.kind) for m in mismatches] == [
        (FROZEN_FILES[0], "missing-file")
    ]


def test_missing_entry_and_stale_entry(tmp_path):
    root = make_tree(tmp_path)
    manifest = root / "analysis-frozen.json"
    write_manifest(root, manifest)
    data = json.loads(manifest.read_text())
    digest = data["files"].pop(FROZEN_FILES[2])
    data["files"]["src/repro/perf/legacy_ghost.py"] = digest
    manifest.write_text(json.dumps(data))
    kinds = {(m.path, m.kind) for m in verify_manifest(root, manifest)}
    assert kinds == {
        (FROZEN_FILES[2], "missing-entry"),
        ("src/repro/perf/legacy_ghost.py", "stale-entry"),
    }


def test_absent_manifest_is_itself_a_failure(tmp_path):
    root = make_tree(tmp_path)
    mismatches = verify_manifest(root, root / "analysis-frozen.json")
    assert [m.kind for m in mismatches] == ["missing-manifest"]


def test_malformed_manifest_raises(tmp_path):
    root = make_tree(tmp_path)
    manifest = root / "analysis-frozen.json"
    manifest.write_text("[]")
    with pytest.raises(ValueError):
        load_manifest(manifest)


# ----------------------------------------------------------------------
# The tracked manifest and the CLI
# ----------------------------------------------------------------------

def test_tracked_manifest_matches_the_shipped_tree():
    """The headline gate: analysis-frozen.json pins the real oracles."""
    manifest = REPO_ROOT / "analysis-frozen.json"
    assert manifest.exists(), "tracked manifest missing from the repo root"
    assert verify_manifest(REPO_ROOT, manifest) == []
    recorded = load_manifest(manifest)
    assert set(recorded) == set(FROZEN_FILES)
    assert recorded == compute_manifest(REPO_ROOT)


def test_cli_frozen_clean_exits_zero(capsys):
    rc = main(["frozen", "--root", str(REPO_ROOT)])
    assert rc == 0
    assert "fingerprints match" in capsys.readouterr().out


def test_cli_frozen_mismatch_exits_one(tmp_path, capsys):
    root = make_tree(tmp_path)
    manifest = root / "analysis-frozen.json"
    write_manifest(root, manifest)
    victim = root / FROZEN_FILES[0]
    victim.write_text(victim.read_text() + "\npass\n")
    rc = main(["frozen", "--root", str(root)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "hash-mismatch" in out and "integrity failure" in out


def test_cli_write_manifest_regenerates(tmp_path, capsys):
    root = make_tree(tmp_path)
    rc = main(["frozen", "--root", str(root), "--write-manifest"])
    assert rc == 0
    assert "wrote 3 fingerprint(s)" in capsys.readouterr().out
    assert verify_manifest(root, root / "analysis-frozen.json") == []


def test_cli_frozen_json_format(tmp_path, capsys):
    root = make_tree(tmp_path)
    write_manifest(root, root / "analysis-frozen.json")
    rc = main(["--format=json", "frozen", "--root", str(root)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True and payload["mismatches"] == []
