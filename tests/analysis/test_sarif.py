"""SARIF 2.1.0 emitter tests: structure, rule metadata, CLI integration."""

import json
from pathlib import Path

from repro.analysis.__main__ import main
from repro.analysis.sarif import SarifResult, sarif_dumps, sarif_log

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def test_log_shape_and_location():
    log = sarif_log(
        [
            SarifResult(
                rule_id="SIM007",
                message="iteration over a set",
                path="src/repro/core/engine.py",
                line=42,
            )
        ]
    )
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "SIM007"
    assert result["level"] == "error"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/core/engine.py"
    assert loc["region"]["startLine"] == 42


def test_rule_metadata_comes_from_the_registry():
    log = sarif_log(
        [SarifResult(rule_id="SIM011", message="m", path="p.py", line=1)]
    )
    (rule,) = log["runs"][0]["tool"]["driver"]["rules"]
    assert rule["id"] == "SIM011"
    assert rule["shortDescription"]["text"]
    assert rule["fullDescription"]["text"]
    assert rule["help"]["text"]


def test_non_lint_rule_ids_get_descriptors():
    log = sarif_log(
        [
            SarifResult(rule_id="LAYER", message="m", path="a.py", line=1),
            SarifResult(rule_id="LEGACY", message="m", path="b.py", line=2),
            SarifResult(rule_id="FROZEN", message="m", path="c.py"),
        ]
    )
    rules = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
    assert rules == {"LAYER", "LEGACY", "FROZEN"}


def test_zero_findings_is_a_valid_empty_log():
    log = sarif_log([])
    assert log["runs"][0]["results"] == []
    assert log["runs"][0]["tool"]["driver"]["rules"] == []


def test_dumps_round_trips():
    results = [SarifResult(rule_id="SIM001", message="x", path="y.py", line=3)]
    assert json.loads(sarif_dumps(results)) == sarif_log(results)


def test_line_floor_is_one():
    log = sarif_log([SarifResult(rule_id="FROZEN", message="m", path="p", line=0)])
    region = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 1


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

def test_cli_lint_sarif_on_bad_fixture(capsys):
    rc = main(
        [
            "--format=sarif",
            "lint",
            str(FIXTURES / "bad_sim007_unordered_iter.py"),
            "--no-baseline",
            "--include-fixtures",
        ]
    )
    assert rc == 1
    log = json.loads(capsys.readouterr().out)
    results = log["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"SIM007"}
    assert len(results) == 5


def test_cli_layering_sarif_on_clean_tree(capsys):
    rc = main(["--format=sarif", "layering", str(REPO_ROOT / "src")])
    assert rc == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


def test_cli_determinism_rejects_sarif(capsys):
    rc = main(["--format=sarif", "determinism"])
    assert rc == 2
    assert "static passes" in capsys.readouterr().err
