"""Import-layering analyzer tests.

Covers the declared DAG (including the strict ``optics -> network -> sim``
chain), the frozen-legacy import prohibition, the module-level allowlist,
undeclared packages, relative-import resolution, and the promise that the
real shipped tree is layering-clean.
"""

import json
from pathlib import Path

from repro.analysis.__main__ import main
from repro.analysis.layering import (
    EDGE_ALLOWLIST,
    LAYER_DAG,
    MODULE_LAYERS,
    ImportEdge,
    analyze_paths,
    check_layering,
    collect_import_edges,
    format_dag,
    package_of,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def edge(src, dst, path="src/repro/x.py", line=1):
    return ImportEdge(src_module=src, dst_module=dst, path=path, line=line)


# ----------------------------------------------------------------------
# DAG semantics
# ----------------------------------------------------------------------

def test_declared_edges_are_clean():
    edges = [
        edge("repro.network.topology", "repro.sim.kernel"),
        edge("repro.optics.plane", "repro.network.topology"),
        edge("repro.core.engine", "repro.optics.plane"),
        edge("repro.sim.kernel", "repro.errors"),
    ]
    assert check_layering(edges) == []


def test_optics_may_not_import_the_kernel_directly():
    # The optics -> network -> sim chain is strict edges: the optical
    # plane rides on the network substrate, never on the kernel.
    violations = check_layering([edge("repro.optics.plane", "repro.sim.kernel")])
    assert len(violations) == 1
    v = violations[0]
    assert v.kind == "layer"
    assert "optics" in v.message and "sim" in v.message


def test_upward_import_is_a_violation():
    violations = check_layering([edge("repro.sim.kernel", "repro.core.engine")])
    assert [v.kind for v in violations] == ["layer"]


def test_service_layer_is_declared_and_bounded():
    # The sweep service rides on the perf harness, the config layer and
    # the analysis fingerprint ...
    assert "service" in LAYER_DAG
    clean = [
        edge("repro.service.runner", "repro.perf.executor"),
        edge("repro.service.runner", "repro.perf.cache"),
        edge("repro.service.runner", "repro.analysis.determinism"),
        edge("repro.service.spec", "repro.core.config"),
    ]
    assert check_layering(clean) == []
    # ... but is not a wildcard layer: importing the one-shot experiment
    # harness from the service is a violation.
    violations = check_layering(
        [edge("repro.service.orchestrator", "repro.experiments.sweep")]
    )
    assert [v.kind for v in violations] == ["layer"]
    assert "experiments" in violations[0].message


def test_batch_module_budget_is_tighter_than_core():
    # The package entry would allow core -> network/power; the batch
    # module's own budget must not.
    budget = MODULE_LAYERS["repro.core.batch"]
    assert "network" not in budget and "power" not in budget
    assert budget < LAYER_DAG["core"] | {"core"}


def test_batch_module_may_not_import_network_or_power():
    for dst in ("repro.network.topology", "repro.power.dpm"):
        violations = check_layering([edge("repro.core.batch", dst)])
        assert len(violations) == 1
        v = violations[0]
        assert v.kind == "module"
        assert "module-scoped budget" in v.message


def test_batch_module_allowed_edges_are_clean():
    edges = [
        edge("repro.core.batch", "repro.core.config"),
        edge("repro.core.batch", "repro.sim.rng"),
        edge("repro.core.batch", "repro.optics.rwa"),
        edge("repro.core.batch", "repro.traffic.capacity"),
        edge("repro.core.batch", "repro.metrics.collector"),
        edge("repro.core.batch", "repro.errors"),
    ]
    assert check_layering(edges) == []


def test_skip_module_budget_is_empty():
    # The next-event helper is pure array arithmetic: it may import
    # nothing from repro at all.
    assert MODULE_LAYERS["repro.core.skip"] == frozenset()
    for dst in ("repro.core.batch", "repro.sim.rng", "repro.network.router"):
        violations = check_layering([edge("repro.core.skip", dst)])
        assert len(violations) == 1, dst
        assert violations[0].kind == "module"


def test_skip_module_is_in_the_vector_engine_lint_scope():
    # SIM007/SIM008's vectorized-engine scope must cover the skip
    # helper: it sits under repro.core, which the prefix list pins.
    from repro.analysis.rules import VECTOR_ENGINE_PREFIXES

    module = "repro.core.skip"
    assert any(
        module == p or module.startswith(p + ".")
        for p in VECTOR_ENGINE_PREFIXES
    )


def test_module_budget_overrides_only_the_declared_module():
    # Sibling core modules keep the package-level budget.
    assert check_layering([edge("repro.core.engine", "repro.network.router")]) == []


def test_legacy_import_outside_perf_is_forbidden():
    violations = check_layering(
        [edge("repro.core.engine", "repro.perf.legacy_engine")]
    )
    assert [v.kind for v in violations] == ["legacy"]
    assert "frozen oracle" in violations[0].message


def test_legacy_import_inside_perf_is_allowed():
    assert check_layering([edge("repro.perf.bench", "repro.perf.legacy")]) == []


def test_perf_wildcard_does_not_cover_legacy():
    # `perf -> anything` is about the harness importing engines; the
    # legacy prohibition is evaluated first and binds everyone else.
    violations = check_layering([edge("repro.cli", "repro.perf.legacy_detailed")])
    assert [v.kind for v in violations] == ["legacy"]


def test_allowlisted_edge_is_tolerated():
    pair = ("repro.metrics.timeseries", "repro.core.engine")
    assert pair in EDGE_ALLOWLIST
    assert check_layering([edge(*pair)]) == []
    # The allowlist is module-exact: a sibling module gets no pass.
    violations = check_layering([edge("repro.metrics.collector", "repro.core.engine")])
    assert [v.kind for v in violations] == ["layer"]


def test_undeclared_package_is_flagged():
    violations = check_layering([edge("repro.newpkg.mod", "repro.sim.kernel")])
    assert [v.kind for v in violations] == ["undeclared"]
    assert "LAYER_DAG" in violations[0].message


def test_same_package_imports_are_ignored():
    assert check_layering([edge("repro.sim.kernel", "repro.sim.events")]) == []


def test_package_of():
    assert package_of("repro.sim.kernel") == "sim"
    assert package_of("repro") == "repro"
    assert package_of("repro.errors") == "errors"


# ----------------------------------------------------------------------
# Edge collection
# ----------------------------------------------------------------------

def test_collect_resolves_absolute_and_relative_imports(tmp_path):
    pkg = tmp_path / "src" / "repro" / "optics"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("from repro.optics import plane\n")
    (pkg / "plane.py").write_text(
        "from repro.network import topology\n"
        "from . import helpers\n"
        "from ..sim import kernel\n"
    )
    (pkg / "helpers.py").write_text("")
    edges = collect_import_edges([tmp_path / "src"])
    got = {(e.src_module, e.dst_module) for e in edges}
    # `from X import y` records the module X — package granularity is what
    # the DAG checks; `y` may be a symbol rather than a submodule.
    assert ("repro.optics.plane", "repro.network") in got
    assert ("repro.optics.plane", "repro.optics") in got  # from . import
    assert ("repro.optics.plane", "repro.sim") in got  # from ..sim import
    assert ("repro.optics", "repro.optics") in got


def test_collect_skips_fixture_and_test_files():
    edges = collect_import_edges([REPO_ROOT / "tests"])
    assert edges == []


# ----------------------------------------------------------------------
# The real tree and the CLI
# ----------------------------------------------------------------------

def test_shipped_tree_is_layering_clean():
    edges, violations = analyze_paths([REPO_ROOT / "src"])
    assert violations == []
    assert len(edges) > 300  # the real import graph, not an empty scan


def test_every_dag_package_exists_or_is_virtual():
    src = REPO_ROOT / "src" / "repro"
    for pkg in LAYER_DAG:
        if pkg in ("repro", "__main__"):
            continue
        assert (src / pkg).exists() or (src / f"{pkg}.py").exists(), pkg


def test_format_dag_mentions_every_package():
    text = format_dag()
    for pkg in LAYER_DAG:
        assert pkg in text
    assert "legacy" in text


def test_cli_layering_clean_tree_exits_zero(capsys):
    rc = main(["layering", str(REPO_ROOT / "src")])
    assert rc == 0
    assert "layering: clean" in capsys.readouterr().out


def test_cli_layering_violation_exits_one(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "optics"
    bad.mkdir(parents=True)
    (bad / "rogue.py").write_text("from repro.sim import kernel\n")
    rc = main(["layering", str(tmp_path / "src")])
    assert rc == 1
    out = capsys.readouterr().out
    assert "LAYER" in out and "rogue.py" in out


def test_cli_layering_json_format(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "rogue.py").write_text("from repro.core import engine\n")
    rc = main(["--format=json", "layering", str(tmp_path / "src")])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["violations"][0]["kind"] == "layer"
    assert payload["violations"][0]["src_module"] == "repro.sim.rogue"


def test_cli_layering_print_dag(capsys):
    rc = main(["layering", "--print-dag"])
    assert rc == 0
    assert "declared layering DAG" in capsys.readouterr().out
