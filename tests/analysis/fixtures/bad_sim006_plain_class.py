# sim-lint: module=repro.network.fixture
"""SIM006 fixture: plain network-substrate classes without __slots__."""
from enum import Enum
from typing import Protocol


class Arbiter:
    def __init__(self, n):
        self.n = n


class Slotted:
    __slots__ = ("n",)

    def __init__(self, n):
        self.n = n


class SlottedChild(Slotted):
    __slots__ = ("extra",)


class BareChild(Slotted):
    pass


class Sinkish(Protocol):
    def receive_flit(self, flit, port): ...


class Status(Enum):
    IDLE = "idle"
