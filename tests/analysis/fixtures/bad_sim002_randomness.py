# sim-lint: module=repro.core.fixture
"""SIM002 fixture: randomness that bypasses RngRegistry streams."""
import random
import numpy as np


def draw():
    return random.random()


def make_generator():
    return np.random.default_rng()


def global_state_draw():
    return np.random.uniform(0.0, 1.0)
