# sim-lint: module=repro.network.fixture
"""SIM004 fixture: float equality on simulation timestamps."""


def window_closed(sim, boundary):
    return sim.now == boundary


def same_delivery(pkt, other):
    return pkt.delivered_at != other.delivered_at
