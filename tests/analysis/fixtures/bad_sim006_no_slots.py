# sim-lint: module=repro.network.fixture
"""SIM006 fixture: hot-path dataclass without slots."""
from dataclasses import dataclass


@dataclass
class Credit:
    port: int
    vc: int


@dataclass(frozen=True)
class Stamp:
    at: float
