# sim-lint: module=repro.core.fixture
"""SIM007 fixture: hash- and history-ordered iteration in engine code."""


def reset_all(queues: dict) -> None:
    for q in queues.values():
        q.reset_window()


def drain_keys(table: dict) -> list:
    return [table[k] for k in table.keys()]


def visit_links(links) -> list:
    return [l for l in set(links)]


def visit_frozen(links) -> list:
    out = []
    for l in frozenset(links):
        out.append(l)
    return out


def literal_set() -> int:
    total = 0
    for port in {3, 1, 2}:
        total += port
    return total


def sorted_is_fine(queues: dict) -> list:
    return [queues[k] for k in sorted(queues.keys())]


def suppressed(queues: dict) -> int:
    # Order-insensitive: integer sum over all entries.
    return sum(q.depth for q in queues.values())  # sim-lint: ignore[SIM007]
