# sim-lint: module=repro.traffic.fixture
"""SIM008 fixture: RNG machinery built outside repro.sim.rng."""
import numpy as np
from numpy.random import SeedSequence


def make_stream(seed: int):
    seq = np.random.SeedSequence(seed, spawn_key=(1, 2))
    return np.random.Generator(np.random.PCG64(seq))


def stdlib_rng(seed: int):
    return Random(seed)
