# sim-lint: module=repro.core.fixture
"""SIM010 fixture: literal zero-delay p0 events in engine code."""


def hop(sim, callback) -> None:
    sim.schedule(0.0, callback)


def hop_fast(sim, callback) -> None:
    sim.schedule_fast(0, callback)


def timed_is_fine(sim, callback) -> None:
    sim.schedule(1.0, callback)


def late_is_fine(sim, callback) -> None:
    sim.schedule_late(0.0, callback)
