# sim-lint: module=repro.sim.cycle.fixture
"""SIM011 fixture: float arithmetic off the integer cycle grid."""


def half_cycle(cycle: float) -> float:
    return cycle / 2


def fractional_step(now: float) -> float:
    return now + 0.5


def drift(next_due: float) -> float:
    next_due -= 0.25
    return next_due


def integral_grid_is_fine(now: float) -> float:
    return now + 1.0


def floor_div_is_fine(cycle: float) -> float:
    return cycle // 2
