# sim-lint: module=repro.sim.fixture
"""Known-good fixture: the allowed counterparts of every SIM rule."""
from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(slots=True)
class Credit:
    """SIM006: hot-path dataclass with slots declared."""

    port: int
    vc: int


def draw_gap(rng: np.random.Generator, p: float) -> int:
    """SIM002/SIM008: drawing through a passed-in registry stream is the
    sanctioned form — machinery construction lives in repro.sim.rng."""
    return int(rng.geometric(p))


def window_closed(now: float, boundary: float) -> bool:
    """SIM004: ordered comparison on timestamps is the sanctioned form."""
    return now >= boundary


def collect(values: Optional[List[int]] = None) -> List[int]:
    """SIM003: None default, construct inside the body."""
    out = values if values is not None else []
    out.append(1)
    return out


def top_level_driver(sim) -> float:
    """SIM005: a plain top-level driver may pump the kernel."""
    sim.run(until=100)
    return sim.now


def microbench() -> int:
    """SIM005: a locally-built sub-simulator is not re-entry."""
    from repro.sim.kernel import Simulator

    sim = Simulator()
    sim.schedule(0.0, lambda: None)
    sim.run()
    return sim.event_count


def reset_all(queues: dict) -> None:
    """SIM007: sorted-key iteration is the sanctioned order."""
    for key in sorted(queues):
        queues[key].reset_window()


def continue_same_instant(sim, callback) -> None:
    """SIM010: same-instant engine hops ride the p1 continuation class."""
    sim.schedule_late(0.0, callback)
