# sim-lint: module=repro.sim.fixture
"""Known-good fixture: the allowed counterparts of every SIM rule."""
from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(slots=True)
class Credit:
    """SIM006: hot-path dataclass with slots declared."""

    port: int
    vc: int


def make_stream(seed: int) -> np.random.Generator:
    """SIM002: constructing seeded generator machinery is allowed."""
    seq = np.random.SeedSequence(seed, spawn_key=(1, 2))
    return np.random.Generator(np.random.PCG64(seq))


def window_closed(now: float, boundary: float) -> bool:
    """SIM004: ordered comparison on timestamps is the sanctioned form."""
    return now >= boundary


def collect(values: Optional[List[int]] = None) -> List[int]:
    """SIM003: None default, construct inside the body."""
    out = values if values is not None else []
    out.append(1)
    return out


def top_level_driver(sim) -> float:
    """SIM005: a plain top-level driver may pump the kernel."""
    sim.run(until=100)
    return sim.now


def microbench() -> int:
    """SIM005: a locally-built sub-simulator is not re-entry."""
    from repro.sim.kernel import Simulator

    sim = Simulator()
    sim.schedule(0.0, lambda: None)
    sim.run()
    return sim.event_count
