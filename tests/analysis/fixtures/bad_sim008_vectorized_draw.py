# sim-lint: module=repro.core.fixture
"""SIM008 fixture: vectorized draws bypassing repro.sim.rng helpers."""


def bulk_gaps(rng, p: float, n: int):
    return rng.geometric(p, size=n)


def bulk_picks(stream, hi: int, n: int):
    return stream.integers(0, hi, size=n)


def attribute_receiver(self, n: int):
    return self._rng.exponential(2.0, size=n)


def scalar_draw_is_fine(rng, p: float):
    return rng.geometric(p)


def non_rng_receiver_is_fine(table, n: int):
    return table.choice(range(n), size=n)
