# sim-lint: module=repro.sim.fixture
"""SIM001 fixture: wall-clock sources inside simulation code."""
import time
from time import perf_counter


def stamp():
    return time.time()


def profile():
    return time.monotonic() - perf_counter()
