# sim-lint: module=repro.traffic.fixture
"""SIM009 fixture: host environment reads in simulation state code."""
import os
import time
from os import environ


def cache_dir() -> str:
    return os.environ.get("ERAPID_CACHE_DIR", "~/.cache")


def salt() -> bytes:
    return os.urandom(8)


def tuned() -> str:
    return os.getenv("ERAPID_TUNING", "default")


def stamp() -> float:
    # traffic is outside SIM001's core scope; the wall-clock read lands
    # on SIM009 instead.
    return time.time()
