"""SIM005 fixture: kernel re-entry from a process and a callback."""


def pump_from_process(sim):
    yield sim.timeout(10)
    sim.run(until=100)


def install_callback(sim):
    def on_fire(_event):
        sim.run(until=sim.now + 1)

    return on_fire
