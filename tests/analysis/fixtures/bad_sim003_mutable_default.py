"""SIM003 fixture: mutable default arguments (unscoped rule)."""


def collect(values=[]):
    values.append(1)
    return values


def index(table={}, *, seen=set()):
    return table, seen
