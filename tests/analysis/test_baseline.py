"""Ratchet-baseline semantics and CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.baseline import Baseline
from repro.analysis.linter import Finding

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def make_finding(path="src/repro/sim/x.py", code="SIM003", line=4):
    return Finding(path=path, line=line, col=0, code=code, message="test finding")


# ----------------------------------------------------------------------
# Ratchet semantics
# ----------------------------------------------------------------------

def test_empty_baseline_marks_everything_new():
    f = make_finding()
    result = Baseline().ratchet([f])
    assert result.new == [f]
    assert result.known == []
    assert result.stale == []
    assert not result.ok


def test_known_findings_are_tolerated():
    f = make_finding()
    baseline = Baseline.from_findings([f])
    result = baseline.ratchet([f])
    assert result.new == []
    assert result.known == [f]
    assert result.ok


def test_stale_entries_are_reported():
    gone = make_finding(line=99)
    still = make_finding(line=4)
    baseline = Baseline.from_findings([gone, still])
    result = baseline.ratchet([still])
    assert result.ok
    assert result.stale == [gone.key]


def test_same_line_different_code_is_new():
    baseline = Baseline.from_findings([make_finding(code="SIM003")])
    result = baseline.ratchet([make_finding(code="SIM004")])
    assert not result.ok


def test_write_load_round_trip(tmp_path):
    f1 = make_finding(line=4)
    f2 = make_finding(path="src/repro/network/y.py", code="SIM006", line=9)
    path = tmp_path / "baseline.json"
    Baseline.from_findings([f1, f2]).write(path)

    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert sorted(payload["findings"]) == sorted([f1.key, f2.key])

    loaded = Baseline.load(path)
    assert loaded.keys == frozenset({f1.key, f2.key})


def test_load_missing_file_is_empty_baseline(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").keys == frozenset()


def test_load_malformed_file_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[]")
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_shipped_baseline_is_empty():
    """The tree ships lint-clean; the checked-in baseline holds no debt."""
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    assert baseline.keys == frozenset()


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------

def test_cli_lint_clean_tree_exits_zero(capsys):
    rc = main(["lint", str(REPO_ROOT / "src"), "--no-baseline"])
    assert rc == 0
    assert "lint: clean" in capsys.readouterr().out


def test_cli_lint_bad_fixture_exits_one(capsys):
    rc = main(
        [
            "lint",
            str(FIXTURES / "bad_sim003_mutable_default.py"),
            "--no-baseline",
            "--include-fixtures",
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "SIM003" in out and "new finding" in out


def test_cli_lint_json_format(capsys):
    rc = main(
        [
            "--format=json",
            "lint",
            str(FIXTURES / "bad_sim004_float_eq.py"),
            "--no-baseline",
            "--include-fixtures",
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert [f["code"] for f in payload["new"]] == ["SIM004", "SIM004"]
    assert [f["line"] for f in payload["new"]] == [6, 10]


def test_cli_baseline_tolerates_then_ratchets(tmp_path, capsys):
    bad = str(FIXTURES / "bad_sim006_no_slots.py")
    baseline = str(tmp_path / "baseline.json")

    rc = main(["lint", bad, "--baseline", baseline, "--write-baseline",
               "--include-fixtures"])
    assert rc == 0

    rc = main(["lint", bad, "--baseline", baseline, "--include-fixtures"])
    assert rc == 0
    assert "tolerated by baseline" in capsys.readouterr().out

    rc = main(["lint", str(FIXTURES / "good_sim.py"), "--baseline", baseline,
               "--include-fixtures"])
    assert rc == 0
    assert "no longer reproduce" in capsys.readouterr().out


def test_cli_missing_path_exits_two(capsys):
    rc = main(["lint", "definitely/not/a/path.py"])
    assert rc == 2
    assert "no such path" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Byte-stability (PR 6 satellite)
# ----------------------------------------------------------------------

def test_write_orders_by_rule_path_then_numeric_line(tmp_path):
    findings = [
        make_finding(path="src/repro/sim/b.py", code="SIM004", line=10),
        make_finding(path="src/repro/sim/b.py", code="SIM004", line=9),
        make_finding(path="src/repro/sim/a.py", code="SIM004", line=100),
        make_finding(path="src/repro/sim/b.py", code="SIM001", line=50),
    ]
    out = tmp_path / "baseline.json"
    Baseline.from_findings(findings).write(out)
    entries = json.loads(out.read_text())["findings"]
    assert entries == [
        "src/repro/sim/b.py:SIM001:50",
        "src/repro/sim/a.py:SIM004:100",
        # line 9 before line 10: numeric, not lexical, ordering
        "src/repro/sim/b.py:SIM004:9",
        "src/repro/sim/b.py:SIM004:10",
    ]


def test_write_is_byte_stable_across_rewrites(tmp_path):
    findings = [
        make_finding(path="src/repro/sim/x.py", code="SIM003", line=i)
        for i in (3, 12, 7, 101, 21)
    ]
    p1 = tmp_path / "a.json"
    p2 = tmp_path / "b.json"
    Baseline.from_findings(findings).write(p1)
    Baseline.load(p1).write(p2)
    assert p1.read_bytes() == p2.read_bytes()


def test_write_normalizes_paths_to_posix(tmp_path):
    findings = [
        make_finding(path="src\\repro\\sim\\x.py", code="SIM003", line=4)
    ]
    out = tmp_path / "baseline.json"
    Baseline.from_findings(findings).write(out)
    entries = json.loads(out.read_text())["findings"]
    assert entries == ["src/repro/sim/x.py:SIM003:4"]
