"""Tests for the wavelength-allocation timeline probe/renderer."""

import pytest

from repro.core import ERapidConfig, FastEngine
from repro.core.policies import NP_B, NP_NB
from repro.errors import MeasurementError
from repro.experiments import AllocationProbe, render_allocation
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.traffic import WorkloadSpec

PLAN = MeasurementPlan(warmup=2000, measure=8000, drain_limit=2000)


def run_probed(policy, pattern="complement", load=0.6, fail=None):
    cfg = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4), policy=policy
    )
    engine = FastEngine(cfg, WorkloadSpec(pattern=pattern, load=load, seed=1), PLAN)
    probe = AllocationProbe(engine, period=2000)
    if fail is not None:
        engine.inject_laser_failure(*fail, at=100.0)
    engine.start()
    probe.start()
    engine.run()
    return engine, probe


def test_probe_samples_on_period():
    engine, probe = run_probed(NP_NB)
    assert len(probe.times) >= 5
    assert probe.times[0] == pytest.approx(2000.0)
    assert probe.times[1] - probe.times[0] == pytest.approx(2000.0)


def test_static_network_shows_no_changes():
    _, probe = run_probed(NP_NB)
    assert probe.grants_observed() == 0


def test_dbr_changes_visible_in_timeline():
    engine, probe = run_probed(NP_B)
    assert probe.grants_observed() > 0
    text = render_allocation(probe, dests=[3])
    assert "dest board 3" in text
    # After reconfiguration every wavelength toward board 3 is owned by 0.
    final = probe.snapshots[-1]
    assert all(owner == 0 for owner in final[3])


def test_render_marks_dark_and_failed():
    engine, probe = run_probed(NP_NB, fail=(3, 1))
    text = render_allocation(probe, dests=[3])
    assert " X" in text   # the failed channel
    assert " ." in text   # λ0 stays dark in the static config


def test_render_all_dests_by_default():
    _, probe = run_probed(NP_NB)
    text = render_allocation(probe)
    for d in range(4):
        assert f"dest board {d}" in text


def test_probe_validation():
    cfg = ERapidConfig(topology=ERapidTopology(boards=4, nodes_per_board=4))
    engine = FastEngine(cfg, WorkloadSpec(load=0.1), PLAN)
    with pytest.raises(MeasurementError):
        AllocationProbe(engine, period=0.0)
    probe = AllocationProbe(engine, period=100.0)
    with pytest.raises(MeasurementError):
        render_allocation(probe)  # never started


# ----------------------------------------------------------------------
# SystemProbe (system-wide power / laser-count sampler)
# ----------------------------------------------------------------------

def test_system_probe_tracks_power_and_lasers():
    from repro.metrics import SystemProbe

    cfg = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4), policy=NP_B
    )
    engine = FastEngine(
        cfg, WorkloadSpec(pattern="complement", load=0.6, seed=1), PLAN
    )
    probe = SystemProbe(engine, period=1000.0)
    engine.start()
    probe.start()
    engine.run()
    assert len(probe.times) == len(probe.power_mw) == len(probe.lasers_on)
    assert len(probe.times) > 5
    # Static bring-up lights B*(B-1)=12 lasers; DBR never exceeds B*W=16
    # and never goes below the busy hot channels.
    assert all(4 <= n <= 16 for n in probe.lasers_on)
    assert max(probe.power_mw) > 0.0
    # Under complement, reconfiguration concentrates ownership but the
    # total lit-laser count stays the same (one laser per owned channel).
    assert probe.lasers_on[-1] >= 12
