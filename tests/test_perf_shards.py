"""Shard planning is a pure, deterministic function of (tasks, jobs, size).

The plan is scheduling metadata only — the executor and bench gate that
layout never changes result bits — so these tests pin the planning
contract itself: the shard-size heuristic's clamps, slab-boundary
respect, task-order preservation within shards, and the stability of the
plan across repeated calls.
"""

import pytest

from repro.core.config import ERapidConfig
from repro.core.policies import POLICIES
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.perf.executor import RunTask
from repro.perf.shards import (
    MIN_SHARD,
    OVERSUBSCRIBE,
    SLAB_CAP,
    ShardSpec,
    effective_shard_size,
    plan_shards,
)
from repro.traffic.workload import WorkloadSpec

TINY_PLAN = MeasurementPlan(warmup=200, measure=600, drain_limit=1500)


def make_tasks(loads=(0.2, 0.3, 0.4), policies=("NP-NB", "P-B"), patterns=("uniform",)):
    base = ERapidConfig(topology=ERapidTopology(boards=2, nodes_per_board=4))
    tasks = []
    for pattern in patterns:
        for policy in policies:
            config = base.with_policy(POLICIES[policy])
            for load in loads:
                tasks.append(
                    RunTask(config, WorkloadSpec(pattern, load, seed=1), TINY_PLAN)
                )
    return tasks


# ----------------------------------------------------------------------
# effective_shard_size
# ----------------------------------------------------------------------
def test_jobs1_uses_full_slab_cap():
    assert effective_shard_size(covered=1000, jobs=1) == SLAB_CAP
    assert effective_shard_size(covered=3, jobs=1) == SLAB_CAP


def test_heuristic_targets_oversubscribed_workers():
    # 144 covered runs on 4 workers × OVERSUBSCRIBE shards each.
    expected = -(-144 // (4 * OVERSUBSCRIBE))  # ceil division
    assert MIN_SHARD <= expected <= SLAB_CAP
    assert effective_shard_size(covered=144, jobs=4) == expected


def test_heuristic_clamps_to_min_shard():
    # Tiny grids would otherwise shatter into 1-run shards whose
    # BatchEngine construction cost dominates.
    assert effective_shard_size(covered=10, jobs=8) == MIN_SHARD


def test_heuristic_clamps_to_slab_cap():
    assert effective_shard_size(covered=100_000, jobs=2) == SLAB_CAP


def test_zero_covered_is_well_defined():
    assert effective_shard_size(covered=0, jobs=4) == SLAB_CAP


def test_override_wins_and_is_clamped():
    assert effective_shard_size(covered=144, jobs=4, slab_shard=3) == 3
    assert effective_shard_size(covered=144, jobs=1, slab_shard=7) == 7
    assert (
        effective_shard_size(covered=144, jobs=4, slab_shard=SLAB_CAP * 10)
        == SLAB_CAP
    )
    with pytest.raises(ValueError):
        effective_shard_size(covered=144, jobs=4, slab_shard=0)


# ----------------------------------------------------------------------
# plan_shards
# ----------------------------------------------------------------------
def test_plan_covers_every_index_exactly_once():
    tasks = make_tasks(patterns=("uniform", "complement"))
    plan = plan_shards(tasks, jobs=2, slab_shard=2)
    seen = [i for shard in plan.shards for i in shard.indices]
    assert sorted(seen) == list(range(len(tasks)))
    assert plan.covered_runs + len(plan.scalar_indices) == len(tasks)


def test_shards_never_cross_slab_boundaries():
    from repro.core.batch import slab_key

    tasks = make_tasks(patterns=("uniform", "complement"))
    plan = plan_shards(tasks, jobs=4, slab_shard=2)
    for shard in plan.batch_shards:
        keys = {
            slab_key(tasks[i].config, tasks[i].workload, tasks[i].plan)
            for i in shard.indices
        }
        assert len(keys) == 1, shard


def test_shard_indices_keep_task_order():
    tasks = make_tasks()
    plan = plan_shards(tasks, jobs=2, slab_shard=2)
    for shard in plan.batch_shards:
        assert list(shard.indices) == sorted(shard.indices)


def test_plan_is_deterministic():
    tasks = make_tasks(patterns=("uniform", "complement"))
    a = plan_shards(tasks, jobs=3, slab_shard=2)
    b = plan_shards(tasks, jobs=3, slab_shard=2)
    assert a == b


def test_uncovered_tasks_land_in_one_trailing_scalar_shard():
    # Hotspot traffic is neither uniform nor a permutation, so
    # coverage_gap is non-None and the point must fall back.
    from repro.core.batch import coverage_gap

    covered = make_tasks()
    config = ERapidConfig(
        topology=ERapidTopology(boards=2, nodes_per_board=4)
    ).with_policy(POLICIES["P-B"])
    gap_task = RunTask(config, WorkloadSpec("hotspot", 0.2, seed=1), TINY_PLAN)
    assert coverage_gap(gap_task.config, gap_task.workload, gap_task.plan)
    tasks = covered + [gap_task]

    plan = plan_shards(tasks, jobs=2)
    assert plan.scalar_indices == (len(tasks) - 1,)
    scalar = plan.shards[-1]
    assert scalar.kind == "scalar"
    assert scalar.shard_id == len(plan.shards) - 1
    assert all(s.kind == "batch" for s in plan.shards[:-1])


def test_describe_and_to_dict_summarize_layout():
    tasks = make_tasks()
    plan = plan_shards(tasks, jobs=2, slab_shard=2)
    text = plan.describe()
    assert text.startswith("shard plan:")
    assert "--slab-shard 2" in text
    assert "jobs=2" in text
    d = plan.to_dict()
    assert d["covered_runs"] == len(tasks)
    assert d["batch_shards"] == len(plan.batch_shards)
    assert d["requested_shard"] == 2

    heuristic = plan_shards(tasks, jobs=1).describe()
    assert "heuristic" in heuristic


def test_shard_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        ShardSpec(shard_id=0, kind="mystery", indices=(0,))


def test_shard_report_carries_optional_telemetry():
    from repro.perf.shards import ShardReport

    plain = ShardReport(shard_id=0, kind="scalar", runs=3, seconds=0.5)
    assert plain.telemetry is None
    assert "telemetry" not in plain.to_dict()

    tel = {"cycles_executed": 10, "cycles_skipped": 90, "horizon": 100}
    batch = ShardReport(
        shard_id=1, kind="batch", runs=4, seconds=0.2, telemetry=tel
    )
    assert batch.to_dict()["telemetry"] == tel


def test_run_sweep_batched_reports_shard_telemetry():
    from repro.perf.executor import run_sweep_batched

    tasks = make_tasks()
    reports = []
    run_sweep_batched(tasks, jobs=1, on_shard=reports.append)
    batch_reports = [r for r in reports if r.kind == "batch"]
    assert batch_reports
    for report in batch_reports:
        tel = report.telemetry
        assert tel is not None
        assert tel["cycles_executed"] > 0
        assert tel["cycles_executed"] + tel["cycles_skipped"] <= tel["horizon"]


def test_plan_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        plan_shards(make_tasks(), jobs=0)
