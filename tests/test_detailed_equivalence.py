"""Cycle-synchronous DetailedEngine vs the frozen process engine: bit-identity.

The clocked rewrite (one CycleDriver tick over flat router/NI arrays with
idle-skip, due-queues for flit deliveries and credit returns, request-driven
VC allocation) is only admissible because it changes *nothing* observable:
every :class:`RunResult` field except the executed-event count must match
the frozen process-based engine (``repro.perf.legacy_detailed``)
bit-for-bit.  These are the CI-sized cells of the matrix; ``python -m
repro.perf bench --only detailed`` runs the full panel and records the
fingerprints.
"""

import pytest

from repro.core.config import ControlParams, ERapidConfig
from repro.core.detailed import DetailedEngine
from repro.core.policies import make_policy
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.perf.legacy_detailed import LegacyDetailedEngine
from repro.traffic.workload import WorkloadSpec

PLAN = MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0)


def _comparable(engine_cls, pattern, policy, load, boards=2,
                nodes_per_board=4, seed=7):
    config = ERapidConfig(
        topology=ERapidTopology(boards=boards, nodes_per_board=nodes_per_board),
        policy=make_policy(policy),
        control=ControlParams(window_cycles=500),
        seed=seed,
    )
    engine = engine_cls(
        config, WorkloadSpec(pattern=pattern, load=load, seed=seed), PLAN
    )
    d = engine.run().to_dict()
    # The one legitimate difference: how many kernel events the run took.
    d["extra"].pop("events")
    return d


@pytest.mark.parametrize("pattern,policy,load", [
    ("uniform", "NP-NB", 0.2),       # static network, light load
    ("uniform", "P-NB", 0.5),        # DPM windows + DVS stalls
    ("complement", "P-NB", 0.8),     # saturating pair load, queue backlog
    ("perfect_shuffle", "NP-NB", 0.4),  # permutation routing
])
def test_clocked_rewrite_is_bit_identical(pattern, policy, load):
    new = _comparable(DetailedEngine, pattern, policy, load)
    old = _comparable(LegacyDetailedEngine, pattern, policy, load)
    assert new == old


def test_clocked_rewrite_bit_identical_larger_platform():
    """A 4-board platform exercises cross-board wavelength fan-out (every
    remote transmitter/receiver pair live) at moderate DPM load."""
    new = _comparable(DetailedEngine, "uniform", "P-NB", 0.4, boards=4)
    old = _comparable(LegacyDetailedEngine, "uniform", "P-NB", 0.4, boards=4)
    assert new == old


def test_clocked_rewrite_bit_identical_across_seeds():
    """Different seeds shift injection draws onto different fractional
    grids; the clocked NI pumps must track each grid exactly."""
    for seed in (1, 11):
        new = _comparable(
            DetailedEngine, "uniform", "P-NB", 0.6, seed=seed
        )
        old = _comparable(
            LegacyDetailedEngine, "uniform", "P-NB", 0.6, seed=seed
        )
        assert new == old


def test_clocked_rewrite_event_count_collapses():
    """Sanity that the comparison above is not vacuous: the clocked engine
    replaces per-cycle router/NI processes and per-flit channel events with
    batched tick work, so it must execute *far* fewer kernel events."""
    config = ERapidConfig(
        topology=ERapidTopology(boards=2, nodes_per_board=4),
        policy=make_policy("P-NB"),
        control=ControlParams(window_cycles=500),
        seed=7,
    )
    wl = WorkloadSpec(pattern="uniform", load=0.5, seed=7)
    new = DetailedEngine(config, wl, PLAN)
    new.run()
    old = LegacyDetailedEngine(config, wl, PLAN)
    old.run()
    assert new.sim.event_count < old.sim.event_count / 2
