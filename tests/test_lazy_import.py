"""The package import contract: ``import repro`` stays numpy-free.

The vectorized batch tier made numpy an explicit dependency, but the
scalar core and the CLI must not pay its import cost (or require its
presence at import time) just to exist.  PEP 562 laziness in
``repro/__init__.py`` is load-bearing; a subprocess pins it, because the
test process itself has long since imported numpy.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC = str(Path(repro.__file__).resolve().parents[1])


def run_snippet(code):
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": ""},
    )


def test_import_repro_is_numpy_free():
    proc = run_snippet(
        "import sys\n"
        "import repro\n"
        "leaked = sorted(m for m in sys.modules if m.startswith(('numpy',)))\n"
        "assert not leaked, leaked\n"
        "assert not any(m.startswith('repro.') for m in sys.modules), "
        "'submodules imported eagerly'\n"
        "print(repro.__version__)\n"
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "1.0.0"


def test_attribute_access_resolves_lazily():
    proc = run_snippet(
        "import sys\n"
        "import repro\n"
        "system = repro.ERapidSystem  # first touch triggers the import\n"
        "assert 'repro.core' in sys.modules\n"
        "assert repro.ERapidSystem is system  # cached on the package\n"
        "print(system.__name__)\n"
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ERapidSystem"


def test_every_declared_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_dir_lists_the_public_surface():
    listing = dir(repro)
    assert "ERapidSystem" in listing
    assert "WorkloadSpec" in listing
    assert "__version__" in listing


def test_unknown_attribute_raises_attribute_error():
    with pytest.raises(AttributeError, match="no attribute 'bogus'"):
        repro.bogus
