"""Integration tests for the fast engine: conservation, reconfiguration
behaviour, policy differentiation.  Small configs keep runs < 1 s each."""

import pytest

from repro.core import ERapidSystem, FastEngine, NP_B, NP_NB, P_B, P_NB
from repro.core.config import ControlParams, ERapidConfig
from repro.errors import ConfigurationError
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.traffic import WorkloadSpec

# Warm-up covers >= 3 reconfiguration windows so DBR/DPM settle before
# the measurement interval opens (grants land ~window 2 + ring latency).
PLAN = MeasurementPlan(warmup=6000, measure=8000, drain_limit=16000)
TOPO4 = ERapidTopology(boards=4, nodes_per_board=4)


def run(policy, pattern="uniform", load=0.4, boards=4, nodes=4, plan=PLAN, **over):
    system = ERapidSystem.build(
        boards=boards, nodes_per_board=nodes, policy=policy, **over
    )
    return system, system.run(WorkloadSpec(pattern=pattern, load=load, seed=11), plan)


# ----------------------------------------------------------------------
# Conservation and sanity
# ----------------------------------------------------------------------

def test_packet_conservation_uniform():
    system, result = run("NP-NB")
    engine = system.last_engine
    injected = sum(n.injected for b in engine.boards for n in b.nodes)
    delivered = sum(n.delivered for b in engine.boards for n in b.nodes)
    in_queues = sum(
        len(n.send_queue) + len(n.recv_queue) for b in engine.boards for n in b.nodes
    )
    in_tx = sum(len(q) for b in engine.boards for q in b.tx_queues.values())
    in_flight = sum(1 for ch in engine.channels.values() if ch.busy)
    assert injected == engine.collector.injected_total
    # Conservation: everything injected is delivered or still in the system.
    assert injected - delivered - in_queues - in_tx >= 0
    assert injected - delivered - in_queues - in_tx <= in_flight + injected // 10


def test_all_labeled_packets_delivered_below_saturation():
    _, result = run("NP-NB", load=0.3)
    assert result.labeled_delivered == result.labeled_injected
    assert result.labeled_injected > 0


def test_throughput_tracks_offered_below_saturation():
    _, result = run("NP-NB", load=0.3)
    assert result.throughput == pytest.approx(result.offered, rel=0.05)
    assert result.acceptance > 0.95


def test_latency_above_zero_load_bound():
    """Latency can never beat serialization + pipeline physics:
    32 (send) + 4 + 41 (optical @5G) + 8 (fiber) + 4 + 32 (recv) ~ 121."""
    _, result = run("NP-NB", load=0.2)
    assert result.avg_latency >= 100.0


def test_reproducible_runs():
    _, r1 = run("P-B", load=0.4)
    _, r2 = run("P-B", load=0.4)
    assert r1.throughput == r2.throughput
    assert r1.avg_latency == r2.avg_latency
    assert r1.power_mw == r2.power_mw


def test_different_seeds_differ():
    system = ERapidSystem.build(boards=4, nodes_per_board=4, policy="NP-NB")
    ra = system.run(WorkloadSpec(pattern="uniform", load=0.4, seed=1), PLAN)
    rb = system.run(WorkloadSpec(pattern="uniform", load=0.4, seed=2), PLAN)
    assert ra.avg_latency != rb.avg_latency


def test_engine_start_twice_raises():
    system, _ = run("NP-NB", load=0.2)
    with pytest.raises(ConfigurationError):
        system.last_engine.start()


def test_higher_load_higher_latency():
    _, lo = run("NP-NB", load=0.2)
    _, hi = run("NP-NB", load=0.7)
    assert hi.avg_latency > lo.avg_latency
    assert hi.throughput > lo.throughput


# ----------------------------------------------------------------------
# Static allocation (NP-NB) behaviour
# ----------------------------------------------------------------------

def test_np_nb_never_reconfigures():
    system, result = run("NP-NB", pattern="complement", load=0.8)
    assert result.extra["grants"] == 0
    assert result.extra["dpm_transitions"] == 0
    engine = system.last_engine
    # Ownership map untouched: exactly B*(B-1) static channels.
    assert len(engine.srs.all_channels()) == 4 * 3


def test_np_nb_complement_saturates_at_one_channel():
    """Static complement throughput caps at mu_opt per board pair:
    1 packet / 40.96 cycles / 4 nodes ~ 0.0061 packets/node/cycle."""
    _, result = run("NP-NB", pattern="complement", load=0.9)
    assert result.throughput == pytest.approx(1 / 40.96 / 4, rel=0.08)
    assert result.offered > 2 * result.throughput


# ----------------------------------------------------------------------
# DBR (NP-B) behaviour
# ----------------------------------------------------------------------

def test_np_b_reconfigures_complement_and_restores_throughput():
    _, static = run("NP-NB", pattern="complement", load=0.8)
    system, reconf = run("NP-B", pattern="complement", load=0.8)
    assert reconf.extra["grants"] > 0
    assert reconf.throughput > 2.5 * static.throughput
    # The hot pairs now own several channels each.
    engine = system.last_engine
    comp = {0: 3, 1: 2, 2: 1, 3: 0}
    for s, d in comp.items():
        assert len(engine.srs.channels_from(s, d)) >= 2


def test_np_b_uniform_is_noop():
    """§4.2: for uniform traffic there are no under-utilized links to move,
    and reconfiguration must not hinder on-going communication."""
    _, static = run("NP-NB", load=0.5)
    _, reconf = run("NP-B", load=0.5)
    assert reconf.extra["grants"] == 0
    assert reconf.throughput == pytest.approx(static.throughput, rel=0.02)
    assert reconf.avg_latency == pytest.approx(static.avg_latency, rel=0.05)


def test_np_b_runs_at_full_power_level():
    system, result = run("NP-B", pattern="complement", load=0.8)
    engine = system.last_engine
    assert result.extra["dpm_transitions"] == 0
    for ch in engine.channels.values():
        assert ch.level is engine.config.power_levels.highest


# ----------------------------------------------------------------------
# DPM (P-NB) behaviour
# ----------------------------------------------------------------------

def test_p_nb_scales_levels_at_low_load():
    system, result = run("P-NB", load=0.15)
    assert result.extra["dpm_transitions"] > 0
    assert result.extra["grants"] == 0


def test_p_nb_saves_power_at_low_load():
    _, base = run("NP-NB", load=0.15)
    _, power = run("P-NB", load=0.15)
    assert power.power_mw < 0.7 * base.power_mw
    assert power.throughput == pytest.approx(base.throughput, rel=0.05)


def test_p_nb_throughput_cost_is_small():
    """Paper: P-NB degrades throughput by < 3 %."""
    for load in (0.3, 0.6):
        _, base = run("NP-NB", load=load)
        _, power = run("P-NB", load=load)
        assert power.throughput >= 0.97 * base.throughput


# ----------------------------------------------------------------------
# LS / P-B behaviour
# ----------------------------------------------------------------------

def test_p_b_combines_grants_and_scaling():
    _, result = run("P-B", pattern="complement", load=0.7)
    assert result.extra["grants"] > 0
    assert result.extra["dpm_transitions"] > 0


def test_p_b_cheaper_than_np_b_on_complement():
    """Paper: P-B consumes ~25 % less than NP-B at similar throughput.

    P-B ratchets granted channels down one level per power window, so the
    warm-up must cover the full descent (~7 windows) before measuring.
    """
    plan = MeasurementPlan(warmup=16000, measure=8000, drain_limit=16000)
    _, np_b = run("NP-B", pattern="complement", load=0.5, plan=plan)
    _, p_b = run("P-B", pattern="complement", load=0.5, plan=plan)
    assert p_b.power_mw < 0.92 * np_b.power_mw
    assert p_b.throughput >= 0.9 * np_b.throughput


def test_p_b_throughput_cost_within_5_percent_uniform():
    """Abstract: LS degrades throughput by less than 5 %."""
    for load in (0.3, 0.5, 0.7):
        _, base = run("NP-NB", load=load)
        _, pb = run("P-B", load=load)
        assert pb.throughput >= 0.95 * base.throughput, load


def test_p_b_power_savings_uniform():
    """Abstract: 25-50 % power reduction (load-dependent; strongest low)."""
    _, base = run("NP-NB", load=0.2)
    _, pb = run("P-B", load=0.2)
    assert pb.power_mw < 0.75 * base.power_mw


def test_dpm_sleep_gates_idle_links():
    system, result = run("P-NB", pattern="complement", load=0.5)
    assert result.extra["sleeps"] > 0
    engine = system.last_engine
    sleeping = [ch for ch in engine.channels.values() if ch.sleeping]
    assert sleeping, "idle static channels should be asleep under complement"


def test_window_cycle_count():
    system, _ = run("P-B", load=0.4)
    engine = system.last_engine
    expected = int(engine.sim.now // engine.config.control.window_cycles)
    assert engine.lockstep.windows_elapsed == expected
    # Odd windows power, even windows bandwidth.
    assert engine.rcs[0].power_cycles == (expected + 1) // 2
    assert engine.rcs[0].bandwidth_cycles == expected // 2


def test_custom_window_size():
    system, result = run(
        "P-B", load=0.3, control=ControlParams(window_cycles=500)
    )
    engine = system.last_engine
    assert engine.lockstep.windows_elapsed == int(engine.sim.now // 500)
    assert engine.lockstep.windows_elapsed > 20


def test_limited_dbr_grants_cap():
    from dataclasses import replace
    from repro.core.policies import NP_B as base_policy

    limited = replace(base_policy, name="NP-B-lim", max_grants_per_dest=1)
    system, result = run(limited, pattern="complement", load=0.8)
    # Grants accumulate over windows but each window adds at most 1/dest.
    assert 0 < result.extra["grants"] <= system.last_engine.lockstep.windows_elapsed * 4


def test_run_result_extras_present():
    _, result = run("P-B", load=0.3)
    for key in ("policy", "pattern", "load", "grants", "dpm_transitions", "events"):
        assert key in result.extra
    assert result.extra["policy"] == "P-B"
