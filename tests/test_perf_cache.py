"""Content-addressed run cache: hits, misses, structural invalidation."""

import json

import pytest

from repro.analysis.determinism import sweep_fingerprint
from repro.core.config import ControlParams, ERapidConfig
from repro.core.policies import POLICIES
from repro.errors import CacheError
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.network.topology import ERapidTopology
from repro.perf.cache import RunCache, default_cache_dir, run_cache_key
from repro.traffic.workload import WorkloadSpec

PLAN = MeasurementPlan(warmup=200, measure=600, drain_limit=1500)


@pytest.fixture()
def run_desc():
    config = ERapidConfig(
        topology=ERapidTopology(boards=2, nodes_per_board=4)
    ).with_policy(POLICIES["P-B"])
    return config, WorkloadSpec("uniform", 0.3, seed=1), PLAN


def fake_result(**overrides):
    fields = dict(
        throughput=0.5,
        offered=0.6,
        avg_latency=123.4,
        p99_latency=456.7,
        max_latency=789.0,
        power_mw=1000.0,
        labeled_injected=10,
        labeled_delivered=9,
        delivered_measure=100,
        extra={"grants": 3},
    )
    fields.update(overrides)
    return RunResult(**fields)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_key_is_deterministic_and_config_sensitive(run_desc):
    config, workload, plan = run_desc
    key = run_cache_key(config, workload, plan)
    assert key == run_cache_key(config, workload, plan)
    # Any field change → different key.
    other_cfg = config.with_policy(POLICIES["NP-NB"])
    assert run_cache_key(other_cfg, workload, plan) != key
    other_wl = WorkloadSpec("uniform", 0.4, seed=1)
    assert run_cache_key(config, other_wl, plan) != key
    other_ctl = ERapidConfig(
        topology=config.topology,
        policy=config.policy,
        control=ControlParams(window_cycles=500),
    )
    assert run_cache_key(other_ctl, workload, plan) != key


def test_key_invalidated_by_kernel_version_bump(run_desc, monkeypatch):
    config, workload, plan = run_desc
    before = run_cache_key(config, workload, plan)
    monkeypatch.setattr("repro.sim.kernel.KERNEL_VERSION", "test-bump")
    assert run_cache_key(config, workload, plan) != before


def test_unknown_object_raises_cache_error(run_desc):
    from repro.perf.cache import _canonical

    with pytest.raises(CacheError):
        _canonical(object())


def test_default_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("ERAPID_CACHE_DIR", str(tmp_path / "alt"))
    assert default_cache_dir() == tmp_path / "alt"
    monkeypatch.delenv("ERAPID_CACHE_DIR")
    assert default_cache_dir().name == "runs"


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_miss_then_hit_round_trips_exactly(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    assert cache.get(key) is None
    result = fake_result()
    cache.put(key, result)
    got = cache.get(key)
    assert got is not None
    assert got.to_dict() == result.to_dict()
    assert cache.stats() == {
        "hits": 1,
        "misses": 1,
        "puts": 1,
        "batched_gets": 0,
        "batched_puts": 0,
    }


def test_corrupt_entry_is_a_miss(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    cache.put(key, fake_result())
    (tmp_path / f"{key}.json").write_text("{ truncated")
    assert cache.get(key) is None


def test_clear_removes_entries(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    cache.put(key, fake_result())
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_entry_file_is_json_with_format_tag(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    cache.put(key, fake_result())
    payload = json.loads((tmp_path / f"{key}.json").read_text())
    assert payload["cache_format"] == 1
    assert payload["result"]["throughput"] == 0.5


# ----------------------------------------------------------------------
# Crash-safe concurrent writes
# ----------------------------------------------------------------------
def test_concurrent_writers_never_publish_a_torn_entry(tmp_path, run_desc):
    """Many threads putting the same key while readers poll: every read is
    either a miss (before first publish) or the complete entry — never a
    parse error surfacing as an exception, never a partial payload."""
    import threading

    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    result = fake_result()
    expected = result.to_dict()
    stop = threading.Event()
    torn = []

    def writer():
        for _ in range(50):
            cache.put(key, result)

    def reader():
        while not stop.is_set():
            got = cache.get(key)
            if got is not None and got.to_dict() != expected:
                torn.append(got)

    readers = [threading.Thread(target=reader) for _ in range(2)]
    writers = [threading.Thread(target=writer) for _ in range(4)]
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    assert torn == []
    # No stray temp files survive a clean run, and the entry is intact.
    assert list(tmp_path.glob("*.tmp")) == []
    assert cache.get(key).to_dict() == expected
    assert cache.stats()["puts"] == 200


def test_put_failure_leaves_no_temp_file(tmp_path, run_desc, monkeypatch):
    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    import os as os_mod

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr("repro.perf.cache.os.replace", boom)
    with pytest.raises(OSError):
        cache.put(key, fake_result())
    monkeypatch.undo()
    assert list(tmp_path.glob("*.tmp")) == []
    assert cache.get(key) is None  # nothing was published


# ----------------------------------------------------------------------
# Batched (slab-granular) cache I/O
# ----------------------------------------------------------------------
def batch_keys(cache, run_desc, n=3):
    config, workload, plan = run_desc
    return [
        cache.key_for(
            config, WorkloadSpec("uniform", 0.1 * (i + 1), seed=1), plan
        )
        for i in range(n)
    ]


def test_get_many_is_positional_and_counts_once(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    keys = batch_keys(cache, run_desc, n=3)
    results = [fake_result(throughput=0.1 * (i + 1)) for i in range(3)]
    cache.put(keys[0], results[0])
    cache.put(keys[2], results[2])

    got = cache.get_many(keys)
    assert got[0].to_dict() == results[0].to_dict()
    assert got[1] is None
    assert got[2].to_dict() == results[2].to_dict()
    stats = cache.stats()
    assert stats["hits"] == 2
    assert stats["misses"] == 1
    assert stats["batched_gets"] == 1


def test_get_many_treats_corrupt_entries_as_misses(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    keys = batch_keys(cache, run_desc, n=2)
    cache.put(keys[0], fake_result())
    (tmp_path / f"{keys[0]}.json").write_text("{ truncated")
    assert cache.get_many(keys) == [None, None]


def test_put_many_round_trips_and_counts_once(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    keys = batch_keys(cache, run_desc, n=3)
    items = [
        (keys[i], fake_result(throughput=0.1 * (i + 1)), "batch")
        for i in range(3)
    ]
    assert cache.put_many(items) == 3
    for key, result, _ in items:
        assert cache.get(key).to_dict() == result.to_dict()
        assert json.loads((tmp_path / f"{key}.json").read_text())["engine"] == "batch"
    stats = cache.stats()
    assert stats["puts"] == 3
    assert stats["batched_puts"] == 1
    assert cache.put_many([]) == 0  # no-op, no counter churn
    assert cache.stats()["batched_puts"] == 1


def test_put_many_rejects_unknown_engine_before_writing(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    keys = batch_keys(cache, run_desc, n=2)
    with pytest.raises(CacheError):
        cache.put_many(
            [(keys[0], fake_result(), "fast"), (keys[1], fake_result(), "warp")]
        )
    assert cache.get(keys[0]) is None  # validation precedes any I/O
    assert list(tmp_path.glob("*.tmp")) == []


def test_put_many_staging_failure_publishes_nothing(
    tmp_path, run_desc, monkeypatch
):
    """An injected fsync failure mid-stage leaves zero entries and zero
    temp files: the batch either fully stages or fully unwinds."""
    cache = RunCache(tmp_path)
    keys = batch_keys(cache, run_desc, n=3)
    calls = {"n": 0}
    import os as os_mod

    real_fsync = os_mod.fsync

    def flaky_fsync(fd):
        calls["n"] += 1
        if calls["n"] == 2:
            raise OSError("injected staging failure")
        return real_fsync(fd)

    monkeypatch.setattr("repro.perf.cache.os.fsync", flaky_fsync)
    with pytest.raises(OSError):
        cache.put_many([(k, fake_result(), "fast") for k in keys])
    monkeypatch.undo()
    assert cache.get_many(keys) == [None, None, None]
    assert list(tmp_path.glob("*.tmp")) == []
    assert cache.stats()["puts"] == 0


def test_put_many_publish_failure_leaves_complete_prefix(
    tmp_path, run_desc, monkeypatch
):
    """An injected os.replace failure mid-publish leaves only complete,
    individually-valid entries (a prefix) — no torn files, no temps."""
    cache = RunCache(tmp_path)
    keys = batch_keys(cache, run_desc, n=3)
    items = [
        (keys[i], fake_result(throughput=0.1 * (i + 1)), "fast")
        for i in range(3)
    ]
    calls = {"n": 0}
    import os as os_mod

    real_replace = os_mod.replace

    def flaky_replace(src, dst):
        calls["n"] += 1
        if calls["n"] == 2:
            raise OSError("injected publish failure")
        return real_replace(src, dst)

    monkeypatch.setattr("repro.perf.cache.os.replace", flaky_replace)
    with pytest.raises(OSError):
        cache.put_many(items)
    monkeypatch.undo()
    # Exactly the first entry was published, and it is complete.
    assert cache.get(keys[0]).to_dict() == items[0][1].to_dict()
    assert cache.get(keys[1]) is None
    assert cache.get(keys[2]) is None
    payload = json.loads((tmp_path / f"{keys[0]}.json").read_text())
    assert payload["cache_format"] == 1
    assert list(tmp_path.glob("*.tmp")) == []
    stats = cache.stats()
    assert stats["puts"] == 1  # only what was actually published
    assert stats["batched_puts"] == 1


# ----------------------------------------------------------------------
# Counters and introspection
# ----------------------------------------------------------------------
def test_persistent_counters_accumulate_across_instances(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    cache.get(key)  # miss
    cache.put(key, fake_result())
    cache.get(key)  # hit
    totals = cache.flush_counters()
    base = {"batched_gets": 0, "batched_puts": 0}
    assert totals == {"hits": 1, "misses": 1, "puts": 1, **base}
    # Session counters reset: a second flush adds nothing.
    assert cache.flush_counters() == totals
    # A fresh instance sees the persisted totals and merges its own.
    other = RunCache(tmp_path)
    other.get(key)  # hit
    assert other.flush_counters() == {"hits": 2, "misses": 1, "puts": 1, **base}
    assert other.persistent_stats() == {"hits": 2, "misses": 1, "puts": 1, **base}


def test_entries_and_size_exclude_stats_sidecar(tmp_path, run_desc):
    cache = RunCache(tmp_path)
    key = cache.key_for(*run_desc)
    cache.put(key, fake_result())
    cache.flush_counters()
    assert (tmp_path / "_stats.json").exists()
    assert cache.entry_count() == 1
    assert [p.stem for p in cache.entries()] == [key]
    assert cache.disk_bytes() == (tmp_path / f"{key}.json").stat().st_size
    # clear() removes entries but leaves the counters sidecar.
    assert cache.clear() == 1
    assert (tmp_path / "_stats.json").exists()
    assert cache.persistent_stats()["puts"] == 1
    cache.reset_counters()
    assert not (tmp_path / "_stats.json").exists()
    assert cache.persistent_stats() == {
        "hits": 0,
        "misses": 0,
        "puts": 0,
        "batched_gets": 0,
        "batched_puts": 0,
    }


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
def test_cached_sweep_is_bit_identical(tmp_path):
    spec = SweepSpec(
        pattern="uniform",
        loads=(0.2, 0.4),
        policies=("NP-NB", "P-B"),
        boards=2,
        nodes_per_board=4,
        seed=1,
        plan=PLAN,
    )
    cache = RunCache(tmp_path)
    first = run_sweep(spec, cache=cache)
    assert cache.stats()["puts"] == 4
    second = run_sweep(spec, cache=cache)
    assert cache.stats()["hits"] == 4
    assert sweep_fingerprint(first) == sweep_fingerprint(second)
    # No cache → no disk traffic, same results.
    uncached = run_sweep(spec)
    assert sweep_fingerprint(uncached) == sweep_fingerprint(first)


def test_reproduce_cli_has_cache_and_jobs_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["reproduce", "--out", "x", "--jobs", "4", "--no-cache"]
    )
    assert args.jobs == 4
    assert args.no_cache is True


def test_resolve_cache_modes(tmp_path):
    from repro.experiments.runner import _resolve_cache

    assert _resolve_cache(False) is None
    assert _resolve_cache(None) is None
    store = RunCache(tmp_path)
    assert _resolve_cache(store) is store
    assert _resolve_cache(True) is not None


# ----------------------------------------------------------------------
# Engine-aware keyspaces (batch tier)
# ----------------------------------------------------------------------
def test_fast_payload_is_byte_stable_without_engine_fields(run_desc):
    """Historical scalar keys must survive the batch tier: engine="fast"
    adds nothing to the canonical payload."""
    from repro.perf.cache import canonical_payload

    config, workload, plan = run_desc
    payload = canonical_payload(config, workload, plan)
    assert "engine" not in payload
    assert "batch_kernel_version" not in payload
    assert payload == canonical_payload(config, workload, plan, engine="fast")
    assert run_cache_key(config, workload, plan) == run_cache_key(
        config, workload, plan, engine="fast"
    )


def test_engine_keyspaces_are_disjoint(run_desc):
    config, workload, plan = run_desc
    keys = {
        run_cache_key(config, workload, plan, engine=e)
        for e in ("fast", "detailed", "batch")
    }
    assert len(keys) == 3


def test_batch_key_tracks_batch_kernel_version(run_desc, monkeypatch):
    config, workload, plan = run_desc
    batch_before = run_cache_key(config, workload, plan, engine="batch")
    fast_before = run_cache_key(config, workload, plan)
    monkeypatch.setattr("repro.core.batch.BATCH_KERNEL_VERSION", "test-bump")
    assert run_cache_key(config, workload, plan, engine="batch") != batch_before
    # The scalar keyspace is untouched by batch kernel bumps.
    assert run_cache_key(config, workload, plan) == fast_before


def test_unknown_engine_raises(run_desc, tmp_path):
    config, workload, plan = run_desc
    with pytest.raises(CacheError):
        run_cache_key(config, workload, plan, engine="warp")
    with pytest.raises(CacheError):
        RunCache(tmp_path).put("deadbeef", fake_result(), engine="warp")


def test_by_engine_stats_breaks_down_entries(tmp_path, run_desc):
    config, workload, plan = run_desc
    cache = RunCache(tmp_path)
    fast_key = cache.key_for(config, workload, plan)
    batch_key = cache.key_for(config, workload, plan, engine="batch")
    cache.put(fast_key, fake_result())
    cache.put(batch_key, fake_result(), engine="batch")
    stats = cache.by_engine_stats()
    assert set(stats) >= {"fast", "detailed", "batch"}
    assert stats["fast"]["entries"] == 1 and stats["fast"]["bytes"] > 0
    assert stats["batch"]["entries"] == 1 and stats["batch"]["bytes"] > 0
    assert stats["detailed"] == {"entries": 0, "bytes": 0}


def test_by_engine_stats_counts_untagged_entries_as_fast(tmp_path):
    cache = RunCache(tmp_path)
    # An entry written before engine tagging existed has no "engine" key.
    legacy = {"cache_format": 1, "result": fake_result().to_dict()}
    (tmp_path / ("ab" * 32 + ".json")).write_text(json.dumps(legacy))
    stats = cache.by_engine_stats()
    assert stats["fast"]["entries"] == 1


def test_entry_files_carry_engine_tag(tmp_path, run_desc):
    config, workload, plan = run_desc
    cache = RunCache(tmp_path)
    key = cache.key_for(config, workload, plan, engine="batch")
    cache.put(key, fake_result(), engine="batch")
    data = json.loads((tmp_path / f"{key}.json").read_text())
    assert data["engine"] == "batch"
