"""Unit-level tests for the RC protocol driver: stage timing, snapshot
consumption and grant actuation — exercised against a real engine whose
clock we drive manually (no traffic)."""

import pytest

from repro.core import ERapidConfig, FastEngine, P_B, NP_B
from repro.core.dpm import LinkWindowStats
from repro.core.reconfig_controller import PairWindowStats, WindowSnapshot
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.sim.trace import TraceLog
from repro.traffic import WorkloadSpec


def make_engine(policy=P_B, trace=None):
    cfg = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4), policy=policy
    )
    return FastEngine(
        cfg,
        WorkloadSpec(pattern="uniform", load=0.0, seed=1),
        MeasurementPlan(warmup=100, measure=100, drain_limit=100),
        trace=trace,
    )


def snapshot_with_hot_pair(engine, src=0, dst=3, util=0.9):
    """A synthetic window snapshot: (src -> dst) congested, others idle."""
    channels = {}
    owners = {}
    for ch in engine.channels.values():
        channels[ch.key] = LinkWindowStats(0.0, 0.0, True)
        owners[ch.key] = ch.owner
    pairs = {}
    topo = engine.topology
    for s in range(topo.boards):
        for d in range(topo.boards):
            if s == d:
                continue
            hot = (s, d) == (src, dst)
            pairs[(s, d)] = PairWindowStats(
                buffer_util=util if hot else 0.0,
                queue_empty=not hot,
                channel_count=len(engine.srs.channels_from(s, d)),
            )
    return WindowSnapshot(
        time=engine.sim.now, window_index=2, channels=channels,
        owners=owners, pairs=pairs,
    )


def test_compute_plan_targets_hot_pair():
    engine = make_engine()
    snap = snapshot_with_hot_pair(engine, src=0, dst=3)
    plan = engine.rcs[3].compute_plan(snap)
    # Everything reallocatable toward board 3 goes to board 0: the two
    # idle static channels (from boards 1 and 2) plus the dark λ0.
    assert len(plan) == 3
    assert all(owner == 0 for _, owner in plan)


def test_compute_plan_other_boards_do_nothing():
    engine = make_engine()
    snap = snapshot_with_hot_pair(engine, src=0, dst=3)
    for rc in engine.rcs[:3]:
        assert rc.compute_plan(snap) == []


def test_bandwidth_cycle_timing_and_actuation():
    trace = TraceLog(categories={"protocol"})
    engine = make_engine(trace=trace)
    snap = snapshot_with_hot_pair(engine, src=0, dst=3)
    engine.rcs[3].schedule_bandwidth_cycle(snap)
    engine.sim.run()
    control = engine.config.control
    total = control.dbr_cycle_latency(4, 4)
    # Grants actuate exactly at the Link Response stage.
    grant_recs = [
        r for r in trace.filter(category="protocol") if r.message.startswith("grant")
    ]
    assert grant_recs
    assert all(r.time == pytest.approx(total) for r in grant_recs)
    # Ownership actually changed.
    assert len(engine.srs.channels_from(0, 3)) == 4
    assert engine.rcs[3].grants_issued == 3
    assert engine.rcs[3].bandwidth_cycles == 1


def test_power_cycle_applies_to_owned_channels_only():
    trace = TraceLog(categories={"protocol"})
    engine = make_engine(trace=trace)
    # Make board 1's outgoing channels look idle -> they must sleep; board
    # 0's look mid-band -> hold.
    channels = {}
    owners = {}
    for ch in engine.channels.values():
        idle = ch.owner == 1
        channels[ch.key] = LinkWindowStats(
            0.0 if idle else 0.8, 0.0, True if idle else False
        )
        owners[ch.key] = ch.owner
    snap = WindowSnapshot(
        time=0.0, window_index=1, channels=channels, owners=owners, pairs={}
    )
    engine.rcs[1].schedule_power_cycle(snap)
    engine.rcs[0].schedule_power_cycle(snap)
    engine.sim.run()
    for ch in engine.channels.values():
        if ch.owner == 1:
            assert ch.sleeping
        elif ch.owner == 0:
            assert not ch.sleeping
            assert ch.level is engine.config.power_levels.highest


def test_power_cycle_latency_matches_lc_ring():
    trace = TraceLog(categories={"protocol"})
    engine = make_engine(trace=trace)
    snap = snapshot_with_hot_pair(engine)
    engine.rcs[0].schedule_power_cycle(snap)
    engine.sim.run()
    recs = list(trace.filter(category="protocol", entity="RC0"))
    sent = next(r for r in recs if "Power_Request sent" in r.message)
    returned = next(r for r in recs if "returned" in r.message)
    expected = engine.config.control.power_cycle_latency(4)
    assert returned.time - sent.time == pytest.approx(expected)


def test_np_b_policy_ignores_dpm_in_plan_application():
    """NP-B grants wavelengths but its channels stay at P_high."""
    engine = make_engine(policy=NP_B)
    snap = snapshot_with_hot_pair(engine, src=2, dst=0)
    engine.rcs[0].schedule_bandwidth_cycle(snap)
    engine.sim.run()
    assert len(engine.srs.channels_from(2, 0)) > 1
    for ch in engine.channels.values():
        assert ch.level is engine.config.power_levels.highest


def test_stale_owner_in_snapshot_skipped_by_power_cycle():
    """If ownership changed between snapshot and apply, the LC skips it."""
    engine = make_engine()
    channels = {}
    owners = {}
    for ch in engine.channels.values():
        channels[ch.key] = LinkWindowStats(0.0, 0.0, True)
        owners[ch.key] = ch.owner
    snap = WindowSnapshot(
        time=0.0, window_index=1, channels=channels, owners=owners, pairs={}
    )
    # Re-own (λ1, b0) from board 1 to board 2 *after* the snapshot.
    engine.apply_grant(0, 1, 2)
    engine.rcs[2].schedule_power_cycle(snap)
    engine.sim.run()
    # Board 2 now owns it, but the snapshot says board 1 did; no sleep.
    assert not engine.channels[(1, 0)].sleeping
