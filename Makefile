PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint layering frozen determinism typecheck baseline bench bench-detailed bench-batch

# The single correctness gate: tier-1 tests, the simulation-invariant
# linter (ratcheted against analysis-baseline.json), the import-layering
# DAG, the frozen-oracle integrity manifest, the determinism audit, and
# mypy when it is installed.
check: test lint layering frozen determinism typecheck

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.analysis lint src tests benchmarks examples

# Check the real import graph against the declared package DAG and the
# frozen-legacy import prohibition.
layering:
	$(PYTHON) -m repro.analysis layering src

# Verify the SHA-256 fingerprints of the frozen bit-identity oracles
# (repro/perf/legacy*.py) against the tracked analysis-frozen.json.
frozen:
	$(PYTHON) -m repro.analysis frozen

determinism:
	$(PYTHON) -m repro.analysis determinism

# mypy is an optional dev dependency; skip gracefully when absent so
# `make check` works in the minimal runtime environment.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "typecheck: mypy not installed, skipping (pip install .[dev])"; \
	fi

# Re-ratchet the lint baseline (the file may only ever shrink).
baseline:
	$(PYTHON) -m repro.analysis lint src tests benchmarks examples --write-baseline

# Regenerate the tracked performance reports (BENCH_*.json at repo root).
bench:
	$(PYTHON) -m repro.perf bench

# Just the detailed-engine benchmark: cycle-synchronous vs frozen legacy
# engine, with the bit-identity gate (non-zero exit on any fingerprint
# mismatch).  Rewrites BENCH_detailed.json at the repo root.
bench-detailed:
	$(PYTHON) -m repro.perf bench --only detailed

# Just the batch-engine benchmark: vectorized struct-of-arrays sweep vs
# the scalar process pool on the paper's 144-point grid, gated on the
# statistical-equivalence tolerances, the permutation-subset bit-identity
# fingerprint, the shard-layout fingerprint-identity check, the >=5x
# single-process speedup bar, (on hosts with >=2 cores) the >=2x sharded
# jobs-scaling bar, and the time-skipping gates: skip/no-skip
# fingerprint identity at every size, cycles_executed < horizon on the
# load-0.1 slabs (the skip machinery actually engages — asserted in
# quick mode too), and in full mode the low-load (<=0.3) subgrid running
# at >=2x the batch rate of the high-load (>=0.7) subgrid on same-width
# single-load slabs (non-zero exit on any failure).
# JOBS= sets the top pool width, e.g. `make bench-batch JOBS=8`.
# Rewrites BENCH_batch.json at the repo root.
JOBS ?= 4
bench-batch:
	$(PYTHON) -m repro.perf bench --only batch --jobs $(JOBS)
